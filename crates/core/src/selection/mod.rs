//! The three-step feature selection pipeline (Section IV-C).
//!
//! Each step has a `_cached` variant that reuses finalized IV / Pearson
//! values (and binned booster columns) from the [`crate::cache`] module
//! across iterations. Cached results are bit-identical to recomputation —
//! the cache stores exactly the `f64` the cold path would produce.
//!
//! [`staged`] adds the successive-halving pruner behind
//! [`crate::config::SelectionMode::Staged`]: candidates are whittled down
//! on growing row subsamples before the exact steps run, and the
//! redundancy scan for that mode runs on shared `u16` binned columns
//! ([`redundancy_filter_binned`]) instead of full `f64` columns.

pub mod staged;

use std::sync::OnceLock;

use safe_data::column::{ColumnRead, ColumnView};
use safe_data::dataset::Dataset;
use safe_gbm::binner::{BinCache, BinnedDataset};
use safe_gbm::corr::{binned_pearson, CorrColumn, CorrScratch};
use safe_gbm::booster::Gbm;
use safe_gbm::config::GbmConfig;
use safe_gbm::error::GbmError;
use safe_gbm::importance::ImportanceKind;
use safe_stats::iv::information_value;
use safe_stats::par::{ParPanic, Parallelism};
use safe_stats::pearson::{pearson, ExactMoments};

use crate::cache::StatsCache;

/// Algorithm 3: compute the IV of every candidate column (β equal-frequency
/// bins, in parallel) and keep those with `IV > α`. Returns the surviving
/// `(column index, IV)` pairs in the original column order.
///
/// Unlabeled data has no IV, so nothing can clear α: the result is empty
/// (the caller treats an empty survivor set as "keep the current features
/// and stop", never as a panic).
pub fn iv_filter(train: &Dataset, alpha: f64, beta: usize) -> Vec<(usize, f64)> {
    match iv_filter_par(train, alpha, beta, Parallelism::auto()) {
        Ok(kept) => kept,
        Err(p) => panic!("{p}"),
    }
}

/// [`iv_filter`] with an explicit thread budget. A panic inside a worker
/// (one poisoned column) is captured and surfaced as [`ParPanic`] so the
/// caller can degrade the iteration instead of unwinding the whole run.
pub fn iv_filter_par(
    train: &Dataset,
    alpha: f64,
    beta: usize,
    par: Parallelism,
) -> Result<Vec<(usize, f64)>, ParPanic> {
    iv_filter_cached(train, alpha, beta, par, None)
}

/// [`iv_filter_par`] with an optional [`StatsCache`]: columns whose IV is
/// already cached (keyed by name + β) skip the computation; only the misses
/// run through the parallel map, and their values are stored back. The kept
/// set is bit-identical with and without a cache.
pub fn iv_filter_cached(
    train: &Dataset,
    alpha: f64,
    beta: usize,
    par: Parallelism,
    cache: Option<&mut StatsCache>,
) -> Result<Vec<(usize, f64)>, ParPanic> {
    safe_data::failpoint!("select/iv-empty" => return Ok(Vec::new()));
    let Some(labels) = train.labels() else {
        return Ok(Vec::new());
    };
    let views: Vec<ColumnView<'_>> = train.column_views().collect();
    let compute = |f: usize| {
        safe_data::failpoint!(
            "select/iv-worker-panic" => panic!("injected worker panic: select/iv-worker-panic")
        );
        // Materialize is zero-copy for resident columns; chunked columns
        // gather into per-worker scratch, so at most one column per thread
        // is resident at a time. A spill-read failure panics here and is
        // captured as [`ParPanic`], degrading the iteration like any other
        // worker fault instead of unwinding the run.
        let mut scratch = Vec::new();
        let col = match views[f].materialize(&mut scratch) {
            Ok(col) => col,
            Err(e) => panic!("column read failed during IV scan: {e}"),
        };
        information_value(col, labels, beta).unwrap_or(0.0)
    };
    let ivs: Vec<f64> = match cache {
        None => safe_stats::par::try_par_map(par, views.len(), compute)?,
        Some(cache) => {
            let names = train.feature_names();
            let mut resolved: Vec<Option<f64>> =
                names.iter().map(|n| cache.iv_lookup(n, beta)).collect();
            let miss_idx: Vec<usize> = (0..views.len())
                .filter(|&f| resolved[f].is_none())
                .collect();
            let computed =
                safe_stats::par::try_par_map(par, miss_idx.len(), |k| compute(miss_idx[k]))?;
            for (&f, &iv) in miss_idx.iter().zip(&computed) {
                cache.iv_insert(names[f], beta, iv);
                resolved[f] = Some(iv);
            }
            resolved.into_iter().map(|v| v.unwrap_or(0.0)).collect()
        }
    };
    Ok(ivs
        .into_iter()
        .enumerate()
        .filter(|&(_, iv)| iv > alpha)
        .collect())
}

/// Algorithm 4: redundancy removal. Candidates are visited in descending-IV
/// order; a candidate is kept unless it correlates above θ (absolute
/// Pearson) with an already-kept feature.
///
/// (The paper's pseudo-code adds the higher-IV member of each offending pair
/// to the output; taken literally that drops uncorrelated features entirely,
/// so — like every scorecard implementation of this step — we implement the
/// stated *intent*: "if the pearson correlation of the two features is
/// greater than 0.8, the feature with the smaller IV of them will be
/// removed".)
///
/// Returns surviving column indices in descending-IV order. Pair
/// correlations are computed in parallel per kept-candidate row.
pub fn redundancy_filter(
    train: &Dataset,
    survivors: &[(usize, f64)],
    theta: f64,
) -> Vec<usize> {
    match redundancy_filter_observed(train, survivors, theta, Parallelism::auto()) {
        Ok((kept, _)) => kept,
        Err(p) => panic!("{p}"),
    }
}

/// [`redundancy_filter`] with an explicit thread budget, additionally
/// reporting how many candidate/kept pairs were correlation-tested.
/// Worker panics surface as [`ParPanic`].
pub fn redundancy_filter_observed(
    train: &Dataset,
    survivors: &[(usize, f64)],
    theta: f64,
    par: Parallelism,
) -> Result<(Vec<usize>, u64), ParPanic> {
    redundancy_filter_cached(train, survivors, theta, par, None)
}

/// [`redundancy_filter_observed`] with an optional [`StatsCache`]: pair
/// correlations already cached (keyed by the unordered column-name pair) are
/// reused; only the missing pairs are computed (in parallel) and stored
/// back. `pairs_compared` counts every pair examined, hit or miss, so the
/// telemetry flow is identical with and without a cache — and so is the
/// kept set, bitwise.
///
/// Since PR 9 the exact kernel is the per-column moment cache
/// ([`ExactMoments`]): NaN-free pairs reduce to one centered dot product
/// that reproduces the two-pass `pearson` bit-for-bit, so every cached
/// value, θ-decision and differential gate is unchanged while the hot loop
/// no longer re-derives means and variances per pair.
pub fn redundancy_filter_cached(
    train: &Dataset,
    survivors: &[(usize, f64)],
    theta: f64,
    par: Parallelism,
    mut cache: Option<&mut StatsCache>,
) -> Result<(Vec<usize>, u64), ParPanic> {
    let mut pairs_compared: u64 = 0;
    let mut order: Vec<(usize, f64)> = survivors.to_vec();
    order.sort_by(|a, b| {
        b.1.partial_cmp(&a.1)
            .unwrap_or(std::cmp::Ordering::Equal)
            .then(a.0.cmp(&b.0))
    });
    let names = train.feature_names();
    let n_cols = train.n_cols();
    // Exact-mode moment kernel: per-column Pearson moments are computed at
    // most once (lazily, on the first miss pair touching the column) and
    // every NaN-free pair collapses to a single centered dot product —
    // [`ExactMoments::rho`] is bitwise-equal to the two-pass `pearson`, so
    // cached values and θ-decisions are unchanged. Pairs touching a column
    // with missing cells keep the pairwise-deletion routine. Fully cached
    // iterations compute no moments at all.
    let moments: Vec<OnceLock<Option<ExactMoments>>> =
        (0..n_cols).map(|_| OnceLock::new()).collect();
    let mut kept: Vec<usize> = Vec::new();
    for &(candidate, _) in &order {
        // Out-of-range survivor indices cannot be kept (defensive: survivor
        // lists always come from iv_filter over the same dataset).
        if candidate >= n_cols {
            continue;
        }
        // Compare against all kept features in parallel; any hit disqualifies.
        pairs_compared += kept.len() as u64;
        let redundant = match cache.as_mut() {
            None => {
                let hits = safe_stats::par::try_par_map(par, kept.len(), |i| {
                    pair_rho(train, &moments, candidate, kept[i]).abs() > theta
                })?;
                hits.into_iter().any(|h| h)
            }
            Some(cache) => {
                let mut rho: Vec<Option<f64>> = kept
                    .iter()
                    .map(|&k| cache.pearson_lookup(names[candidate], names[k]))
                    .collect();
                let miss_idx: Vec<usize> =
                    (0..kept.len()).filter(|&i| rho[i].is_none()).collect();
                let computed = safe_stats::par::try_par_map(par, miss_idx.len(), |j| {
                    pair_rho(train, &moments, candidate, kept[miss_idx[j]])
                })?;
                for (&i, &r) in miss_idx.iter().zip(&computed) {
                    cache.pearson_insert(names[candidate], names[kept[i]], r);
                    rho[i] = Some(r);
                }
                rho.into_iter().any(|r| r.unwrap_or(0.0).abs() > theta)
            }
        };
        if !redundant {
            kept.push(candidate);
        }
    }
    Ok((kept, pairs_compared))
}

/// Moments of column `idx`, computed on first use and shared across scan
/// workers. A spill-read failure panics so the parallel scan surfaces it as
/// a captured [`ParPanic`] and the caller degrades the iteration.
fn moments_of<'m>(
    train: &Dataset,
    moments: &'m [OnceLock<Option<ExactMoments>>],
    idx: usize,
) -> &'m Option<ExactMoments> {
    moments[idx].get_or_init(|| {
        let view = match train.column_view(idx) {
            Ok(v) => v,
            Err(e) => panic!("column {idx} unavailable during redundancy scan: {e}"),
        };
        let mut scratch = Vec::new();
        let col = match view.materialize(&mut scratch) {
            Ok(c) => c,
            Err(e) => panic!("column {idx} read failed during redundancy scan: {e}"),
        };
        ExactMoments::of(col)
    })
}

/// Signed correlation of columns `a` and `b`: the moment kernel when both
/// columns are NaN-free (bitwise-equal to `pearson`), otherwise the
/// pairwise-deletion `pearson` on materialized slices (zero-copy when
/// resident).
fn pair_rho(
    train: &Dataset,
    moments: &[OnceLock<Option<ExactMoments>>],
    a: usize,
    b: usize,
) -> f64 {
    if let (Some(ma), Some(mb)) = (
        moments_of(train, moments, a).as_ref(),
        moments_of(train, moments, b).as_ref(),
    ) {
        return ma.rho(mb);
    }
    let (va, vb) = match (train.column_view(a), train.column_view(b)) {
        (Ok(va), Ok(vb)) => (va, vb),
        (Err(e), _) | (_, Err(e)) => {
            panic!("column unavailable during redundancy scan: {e}")
        }
    };
    let (mut sa, mut sb) = (Vec::new(), Vec::new());
    let ca = match va.materialize(&mut sa) {
        Ok(c) => c,
        Err(e) => panic!("column {a} read failed during redundancy scan: {e}"),
    };
    let cb = match vb.materialize(&mut sb) {
        Ok(c) => c,
        Err(e) => panic!("column {b} read failed during redundancy scan: {e}"),
    };
    pearson(ca, cb)
}

/// Half-width of the |ρ| band around θ inside which
/// [`redundancy_filter_binned`] falls back to the exact `f64` Pearson.
/// Sized to cover the binned kernel's documented ±0.02 quantization error
/// with headroom for heavily missing columns (pairwise deletion over bin
/// representatives amplifies the error).
pub const BINNED_THETA_MARGIN: f64 = 0.05;

/// Minimum [`CorrColumn::rep_variance_ratio`] for the binned estimate to
/// decide a pair at all. A column below the floor lost a visible fraction
/// of its variance to bin-mean dilution — the signature of a heavy-tailed
/// candidate whose exact ρ is carried by a few extreme rows the
/// representatives smear away — and no margin around θ can bound the
/// resulting error (deviations past 0.5 absolute were measured on
/// nested-division candidates). Pairs touching such a column always use
/// the exact `f64` Pearson. Smooth and lossless columns sit at ~1.0, so
/// the common case keeps the integer kernel.
pub const BINNED_TRUST_FLOOR: f64 = 0.999;

/// Staged-mode redundancy removal: the same greedy descending-IV scan as
/// [`redundancy_filter_cached`], but with pair correlations computed by the
/// integer co-occurrence kernel ([`safe_gbm::corr::binned_pearson`]) over
/// `u16` bin columns quantized at `max_bins` — shared with the ranking
/// booster through the [`BinCache`], so the rank-topk stage re-bins
/// nothing.
///
/// The binned statistic is *not* bit-identical to the exact `f64`
/// `pearson` (see the precision contract in `safe_gbm::corr`), which is
/// why this function is only reachable under
/// [`crate::config::SelectionMode::Staged`] and never consults the
/// [`StatsCache`] used by the exact path. Two guards keep every θ-decision
/// consistent with the exact kernel: pairs touching a column below
/// [`BINNED_TRUST_FLOOR`] (bin-mean dilution of outliers — the estimate is
/// unbounded there) and pairs whose estimate lands within
/// [`BINNED_THETA_MARGIN`] of θ (quantization wobble) are re-decided with
/// the exact `f64` Pearson, so neither failure mode can flip a keep/drop
/// decision and cascade through the greedy scan.
///
/// Like the exact scan, each candidate's comparisons against the kept set
/// fan out across the thread budget once the kept set is large enough to
/// amortize a per-chunk scratch table ([`PAR_SCAN_MIN`]); below that the
/// scan stays serial on one persistent scratch. Every pair decision is a
/// pure function of the two columns, so the kept set is identical at any
/// thread count.
///
/// Returns surviving column indices in descending-IV order plus the number
/// of pairs examined, mirroring [`redundancy_filter_cached`].
pub fn redundancy_filter_binned(
    train: &Dataset,
    survivors: &[(usize, f64)],
    theta: f64,
    max_bins: usize,
    par: Parallelism,
    bin_cache: Option<&mut BinCache>,
) -> Result<(Vec<usize>, u64), BinnedRedundancyError> {
    let mut order: Vec<(usize, f64)> = survivors.to_vec();
    order.sort_by(|a, b| {
        b.1.partial_cmp(&a.1)
            .unwrap_or(std::cmp::Ordering::Equal)
            .then(a.0.cmp(&b.0))
    });
    let order_idx: Vec<usize> = order.iter().map(|&(i, _)| i).collect();
    let sub = train.select_columns(&order_idx)?;
    let binned = match bin_cache {
        Some(cache) => BinnedDataset::fit_cached(&sub, max_bins, par, cache),
        None => BinnedDataset::fit(&sub, max_bins, par),
    };
    // Materialize the survivor columns: resident columns are borrowed
    // zero-copy; chunked columns are gathered once into owned scratch (a
    // documented staged-mode residency caveat — this scan touches every
    // survivor column repeatedly, so streaming re-reads would thrash the
    // chunk cache).
    let views: Vec<ColumnView<'_>> = sub.column_views().collect();
    let mut gathered: Vec<Vec<f64>> = Vec::new();
    let mut slots: Vec<Option<usize>> = Vec::with_capacity(views.len());
    for view in &views {
        if view.as_slice().is_some() {
            slots.push(None);
        } else {
            let mut buf = Vec::new();
            view.gather_into(&mut buf)?;
            slots.push(Some(gathered.len()));
            gathered.push(buf);
        }
    }
    let raw_cols: Vec<&[f64]> = views
        .iter()
        .zip(&slots)
        .map(|(view, slot)| match slot {
            Some(g) => gathered[*g].as_slice(),
            None => view.as_slice().unwrap_or(&[]),
        })
        .collect();
    let corr_cols: Vec<CorrColumn> = (0..sub.n_cols())
        .map(|f| CorrColumn::new(binned.bins(f), binned.mapper(f), raw_cols[f]))
        .collect();
    // Exact fast path for NaN-free pairs: with every row shared, the
    // pairwise-deletion means and variance sums inside `pearson` collapse
    // to per-column constants. Precomputing them — and the centered
    // values — in the same accumulation order reproduces `pearson`
    // bitwise (f64 addition chains are never reassociated) while
    // reducing each pair to a single centered dot product.
    let moments: Vec<Option<ExactMoments>> =
        raw_cols.iter().map(|col| ExactMoments::of(col)).collect();
    // For pairs with missing cells the kernel choice is layered: the
    // binned estimate decides the pair only when it is known to track
    // exact ρ — both columns must retain their variance through the bin
    // representatives (outlier-diluted columns deviate unboundedly — the
    // nested division shapes), and the estimate must land clear of the
    // ±BINNED_THETA_MARGIN ambiguity band around θ (quantization wobble
    // on smooth data is documented at ±0.02). Everything else is
    // re-decided with the exact f64 Pearson, so no path can flip a
    // keep/drop decision and cascade through the greedy scan.
    let decide = |candidate: usize, k: usize, scratch: &mut CorrScratch| -> bool {
        if let (Some(a), Some(b)) = (&moments[candidate], &moments[k]) {
            return a.abs_rho(b) > theta;
        }
        let trusted = corr_cols[candidate].rep_variance_ratio() >= BINNED_TRUST_FLOOR
            && corr_cols[k].rep_variance_ratio() >= BINNED_TRUST_FLOOR;
        if trusted {
            let approx = binned_pearson(&corr_cols[candidate], &corr_cols[k], scratch).abs();
            if (approx - theta).abs() > BINNED_THETA_MARGIN {
                return approx > theta;
            }
        }
        pearson(raw_cols[candidate], raw_cols[k]).abs() > theta
    };
    let mut scratch = CorrScratch::new();
    let mut pairs_compared: u64 = 0;
    let mut kept: Vec<usize> = Vec::new(); // indices into `order`
    for candidate in 0..order.len() {
        pairs_compared += kept.len() as u64;
        let redundant = if kept.len() < PAR_SCAN_MIN || par.resolve() <= 1 {
            kept.iter().any(|&k| decide(candidate, k, &mut scratch))
        } else {
            let hits = safe_stats::par::try_par_chunks(par, kept.len(), |range| {
                let mut scratch = CorrScratch::new();
                range.map(|i| kept[i]).any(|k| decide(candidate, k, &mut scratch))
            })?;
            hits.into_iter().any(|h| h)
        };
        if !redundant {
            kept.push(candidate);
        }
    }
    Ok((kept.into_iter().map(|i| order[i].0).collect(), pairs_compared))
}

/// Kept-set size below which [`redundancy_filter_binned`] scans serially:
/// a parallel chunk pays for a fresh scratch table, so fanning out only
/// earns its keep once each worker amortizes it over enough pairs.
pub const PAR_SCAN_MIN: usize = 64;

/// Error from [`redundancy_filter_binned`]: the finalist column projection
/// or binning failed, or a parallel scan worker panicked. Both degrade the
/// iteration at the call site rather than unwinding the run.
#[derive(Debug, Clone)]
pub enum BinnedRedundancyError {
    /// Dataset projection / binning failure.
    Data(safe_data::error::DataError),
    /// A redundancy-scan worker panicked.
    Panic(ParPanic),
}

impl std::fmt::Display for BinnedRedundancyError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            BinnedRedundancyError::Data(e) => write!(f, "{e}"),
            BinnedRedundancyError::Panic(p) => write!(f, "redundancy worker panicked: {p}"),
        }
    }
}

impl std::error::Error for BinnedRedundancyError {}

impl From<safe_data::error::DataError> for BinnedRedundancyError {
    fn from(e: safe_data::error::DataError) -> Self {
        BinnedRedundancyError::Data(e)
    }
}

impl From<ParPanic> for BinnedRedundancyError {
    fn from(p: ParPanic) -> Self {
        BinnedRedundancyError::Panic(p)
    }
}

/// Section IV-C3: rank the surviving candidates by average split gain of a
/// booster trained on exactly those columns, and keep at most `cap`.
/// Features the booster never split on rank after used ones, in IV order
/// (`fallback_order`). Returns column indices **into `train`**.
pub fn rank_and_cap(
    train: &Dataset,
    valid: Option<&Dataset>,
    survivors: &[usize],
    ranker: &GbmConfig,
    cap: usize,
) -> Result<Vec<usize>, GbmError> {
    rank_and_cap_observed(train, valid, survivors, ranker, cap, &safe_obs::NullSink, None)
        .map(|(idx, _)| idx)
}

/// [`rank_and_cap`], additionally emitting the internal booster's training
/// counters through `sink` under the `rank-topk` stage and returning them.
pub fn rank_and_cap_observed(
    train: &Dataset,
    valid: Option<&Dataset>,
    survivors: &[usize],
    ranker: &GbmConfig,
    cap: usize,
    sink: &dyn safe_obs::EventSink,
    iteration: Option<usize>,
) -> Result<(Vec<usize>, safe_gbm::GbmFitStats), GbmError> {
    rank_and_cap_cached(train, valid, survivors, ranker, cap, None, sink, iteration)
}

/// [`rank_and_cap_observed`] with an optional [`BinCache`] for the internal
/// ranking booster. Column selection preserves names and values, so binned
/// columns cached by the miner (or a previous iteration's ranker) are reused
/// directly; the trained model — and therefore the returned ranking — is
/// bit-identical with and without the cache.
#[allow(clippy::too_many_arguments)]
pub fn rank_and_cap_cached(
    train: &Dataset,
    valid: Option<&Dataset>,
    survivors: &[usize],
    ranker: &GbmConfig,
    cap: usize,
    cache: Option<&mut BinCache>,
    sink: &dyn safe_obs::EventSink,
    iteration: Option<usize>,
) -> Result<(Vec<usize>, safe_gbm::GbmFitStats), GbmError> {
    safe_data::failpoint!("select/rank", GbmError::Injected("select/rank"));
    if survivors.is_empty() {
        return Ok((Vec::new(), safe_gbm::GbmFitStats::default()));
    }
    if survivors.len() <= cap {
        // Still rank for deterministic ordering, but nothing to cut.
        // Fall through so the returned order is importance-based.
    }
    let sub_train = train.select_columns(survivors)?;
    let sub_valid = match valid {
        Some(v) => Some(v.select_columns(survivors)?),
        None => None,
    };
    let (model, stats) = Gbm::new(ranker.clone()).fit_cached_observed(
        &sub_train,
        sub_valid.as_ref(),
        cache,
        sink,
        safe_obs::stages::RANK_TOPK,
        iteration,
    )?;
    let importance = model.importance(ImportanceKind::AverageGain);
    let mut order: Vec<usize> = (0..survivors.len()).collect();
    order.sort_by(|&a, &b| {
        importance.scores[b]
            .partial_cmp(&importance.scores[a])
            .unwrap_or(std::cmp::Ordering::Equal)
            .then(a.cmp(&b))
    });
    let selected = order.into_iter().take(cap).map(|i| survivors[i]).collect();
    Ok((selected, stats))
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Columns: strong signal, its near-copy, weak signal, pure noise.
    fn fixture(n: usize) -> Dataset {
        let labels: Vec<u8> = (0..n).map(|i| (i >= n / 2) as u8).collect();
        let strong: Vec<f64> = (0..n).map(|i| i as f64).collect();
        let copy: Vec<f64> = strong.iter().map(|v| v * 2.0 + 1.0).collect();
        let weak: Vec<f64> = (0..n)
            .map(|i| if i % 5 == 0 { (i >= n / 2) as u8 as f64 } else { (i % 2) as f64 })
            .collect();
        let noise: Vec<f64> = (0..n).map(|i| ((i * 7919) % 97) as f64).collect();
        Dataset::from_columns(
            vec!["strong".into(), "copy".into(), "weak".into(), "noise".into()],
            vec![strong, copy, weak, noise],
            Some(labels),
        )
        .unwrap()
    }

    #[test]
    fn iv_filter_drops_noise_keeps_signal() {
        let ds = fixture(1000);
        let kept = iv_filter(&ds, 0.1, 10);
        let indices: Vec<usize> = kept.iter().map(|&(i, _)| i).collect();
        assert!(indices.contains(&0), "strong signal survives");
        assert!(indices.contains(&1), "the copy also has high IV");
        assert!(!indices.contains(&3), "noise must be dropped");
        for &(_, iv) in &kept {
            assert!(iv > 0.1);
        }
    }

    #[test]
    fn iv_filter_respects_alpha() {
        let ds = fixture(1000);
        let loose = iv_filter(&ds, 0.0, 10);
        let strict = iv_filter(&ds, 50.0, 10);
        assert!(loose.len() >= iv_filter(&ds, 0.1, 10).len());
        assert!(strict.is_empty(), "nothing clears an absurd threshold");
    }

    #[test]
    fn redundancy_filter_keeps_one_of_each_pair() {
        let ds = fixture(1000);
        let survivors = iv_filter(&ds, 0.1, 10);
        let kept = redundancy_filter(&ds, &survivors, 0.8);
        // strong and copy are affinely related (ρ = 1): only one survives.
        let both = kept.contains(&0) && kept.contains(&1);
        assert!(!both, "perfectly correlated pair must lose a member: {kept:?}");
        assert!(kept.contains(&0) || kept.contains(&1));
    }

    #[test]
    fn redundancy_filter_no_false_drops() {
        // Uncorrelated survivors all stay.
        let n = 400;
        let labels: Vec<u8> = (0..n).map(|i| (i >= n / 2) as u8).collect();
        let a: Vec<f64> = (0..n).map(|i| i as f64).collect();
        let b: Vec<f64> = (0..n).map(|i| ((i * 31) % n) as f64).collect();
        let ds = Dataset::from_columns(
            vec!["a".into(), "b".into()],
            vec![a, b],
            Some(labels),
        )
        .unwrap();
        let survivors = vec![(0, 2.0), (1, 1.0)];
        let kept = redundancy_filter(&ds, &survivors, 0.8);
        assert_eq!(kept.len(), 2);
    }

    #[test]
    fn redundancy_filter_prefers_higher_iv() {
        let ds = fixture(1000);
        // Force explicit IVs: column 1 higher than column 0.
        let survivors = vec![(0, 0.5), (1, 0.9)];
        let kept = redundancy_filter(&ds, &survivors, 0.8);
        assert_eq!(kept, vec![1], "higher-IV member of the pair wins");
    }

    #[test]
    fn rank_and_cap_puts_signal_first() {
        let ds = fixture(1000);
        let survivors = vec![0, 2, 3];
        let ranked = rank_and_cap(&ds, None, &survivors, &GbmConfig::miner(), 2).unwrap();
        assert_eq!(ranked.len(), 2);
        assert_eq!(ranked[0], 0, "strong signal ranks first: {ranked:?}");
    }

    #[test]
    fn rank_and_cap_handles_empty() {
        let ds = fixture(100);
        let ranked = rank_and_cap(&ds, None, &[], &GbmConfig::miner(), 5).unwrap();
        assert!(ranked.is_empty());
    }

    #[test]
    fn rank_and_cap_caps() {
        let ds = fixture(500);
        let survivors = vec![0, 1, 2, 3];
        let ranked = rank_and_cap(&ds, None, &survivors, &GbmConfig::miner(), 3).unwrap();
        assert_eq!(ranked.len(), 3);
    }

    #[test]
    fn exact_moments_fast_path_is_bitwise_pearson() {
        // The staged scan's NaN-free fast path must reproduce the two-pass
        // `pearson` to the last bit — it caches the same accumulations, it
        // does not approximate them.
        let mut state = 0x5DEECE66Du64;
        let mut next = move || {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            (state >> 11) as f64 / (1u64 << 53) as f64
        };
        for n in [2usize, 7, 100, 421] {
            let x: Vec<f64> = (0..n).map(|_| next() * 10.0 - 5.0).collect();
            let y: Vec<f64> = x
                .iter()
                .map(|&v| 0.3 * v + next()) // correlated but not degenerate
                .collect();
            let (ma, mb) = (ExactMoments::of(&x).unwrap(), ExactMoments::of(&y).unwrap());
            let fast = ma.abs_rho(&mb);
            let exact = pearson(&x, &y).abs();
            assert_eq!(fast.to_bits(), exact.to_bits(), "n={n}: {fast} vs {exact}");
        }
        // Constant column: pearson defines ρ = 0.
        let c = vec![3.0; 50];
        let v: Vec<f64> = (0..50).map(|_| next()).collect();
        let (mc, mv) = (ExactMoments::of(&c).unwrap(), ExactMoments::of(&v).unwrap());
        assert_eq!(mc.abs_rho(&mv).to_bits(), pearson(&c, &v).abs().to_bits());
        // Columns with missing cells are excluded from the fast path.
        assert!(ExactMoments::of(&[1.0, f64::NAN, 2.0]).is_none());
        assert!(ExactMoments::of(&[1.0]).is_none());
    }
}
