//! Successive-halving candidate pruning (OpenFE-style) for the selection
//! stage.
//!
//! The exact selection pipeline scores **every** candidate with a full-row
//! IV pass, an O(d²·n) Pearson scan, and a booster retrain — on gina that
//! is 1.7 s per iteration against 0.4 s of actual GBM training. Most of
//! that work is spent precisely ranking candidates that any cheap score
//! would already reject. This module implements the standard
//! successive-halving fix:
//!
//! 1. score the whole pool with a cheap statistic (IV at the pipeline's β
//!    bins) on a **small deterministic row subsample** (rung 0,
//!    [`StagedConfig::base_rows`] rows),
//! 2. keep the better-scoring half, double the sample
//!    (`base_rows << rung`), re-score the survivors,
//! 3. repeat until the pool fits [`StagedConfig::finalist_target`]; only
//!    those finalists get the exact IV / Pearson / gain treatment.
//!
//! ## Determinism contract
//!
//! - The subsample for a rung is a pure function of `(seed, rung)` —
//!   [`subsample_rows`] runs a partial Fisher–Yates shuffle driven by
//!   SplitMix64, entirely off the thread pool.
//! - Per-candidate scores are computed with
//!   [`safe_stats::par::try_par_map`], whose fixed-order chunk merge makes
//!   the score vector identical at every thread count; ties in the
//!   survivor cut break by ascending column index.
//! - Pools already at or under the finalist target (including the trivial
//!   1-candidate pool) **short-circuit**: no rungs run, the pool passes
//!   straight to exact scoring ([`StagedReport::short_circuited`]).
//!
//! `crates/core/tests/proptest_staged.rs` pins all three properties;
//! `tests/selection_differential.rs` pins AUC parity of the end-to-end
//! staged pipeline against exact selection.
//!
//! A worker panic while scoring (exercised by the
//! `select/staged-worker-panic` failpoint) surfaces as [`ParPanic`], which
//! the pipeline turns into a degraded iteration — never a poisoned run.

use safe_data::column::{ColumnRead, ColumnView};
use safe_data::dataset::Dataset;
use safe_stats::iv::information_value;
use safe_stats::par::{try_par_map, ParPanic, Parallelism};

/// Halving-schedule knobs. Constructed via [`StagedConfig::for_pool`] by
/// the pipeline; tests may build it directly to pin schedule edges.
#[derive(Debug, Clone)]
pub struct StagedConfig {
    /// Rows scored at rung 0; rung r samples `base_rows << r` rows
    /// (clamped to the dataset). Default 256.
    pub base_rows: usize,
    /// Stop halving once the pool is at or under this size; these
    /// finalists proceed to exact scoring. Pools already at or under the
    /// target short-circuit entirely.
    pub finalist_target: usize,
    /// Equal-frequency bins for the cheap IV score (the pipeline's β).
    pub beta: usize,
    /// Seed for the per-rung row subsamples (the pipeline passes its
    /// iteration-derived seed, so rungs differ across iterations).
    pub seed: u64,
}

impl StagedConfig {
    /// Pipeline defaults: rung-0 sample of 512 rows, finalist target of
    /// half the pool, clamped below by 128 (pools that small are cheap to
    /// score exactly, and cutting them was measured to evict candidates
    /// the exact rank stage puts in its plan). Halving once is
    /// deliberately conservative: the binned redundancy pass and the
    /// shrunken rank retrain carry the speedup, while the gentle cut keeps
    /// downstream AUC inside the ±0.005 parity band
    /// (`tests/selection_differential.rs` — a quarter-pool target was
    /// measured past the band on NaN-heavy data). The target is
    /// deliberately *not* clamped by the rank-topk `cap`: the exact stages
    /// downstream pick the final `cap` outputs by booster gain, and gain
    /// order correlates only loosely with the cheap IV score — cutting to
    /// `cap` here was measured to evict candidates the exact pipeline
    /// ranks into its plan, pushing AUC past the parity band on
    /// narrow-cap datasets.
    pub fn for_pool(_cap: usize, pool: usize, beta: usize, seed: u64) -> StagedConfig {
        StagedConfig {
            base_rows: 512,
            finalist_target: pool.div_ceil(2).max(128),
            beta,
            seed,
        }
    }
}

/// What one halving rung did: pool sizes, sample size, and the surviving
/// column indices (ascending).
#[derive(Debug, Clone)]
pub struct RungReport {
    /// Rung number, 0-based.
    pub rung: usize,
    /// Rows in this rung's subsample.
    pub sample_rows: usize,
    /// Candidates entering the rung.
    pub pool_in: usize,
    /// Candidates surviving the cut.
    pub pool_out: usize,
    /// Surviving column indices, ascending.
    pub survivors: Vec<usize>,
}

/// Full schedule trace returned alongside the finalists.
#[derive(Debug, Clone, Default)]
pub struct StagedReport {
    /// One entry per executed rung, in order.
    pub rungs: Vec<RungReport>,
    /// True when the pool was already at or under the finalist target (or
    /// the dataset is unlabeled) and no rungs ran.
    pub short_circuited: bool,
}

impl StagedReport {
    /// Total rows scored across all rungs (Σ pool_in · sample_rows) — the
    /// telemetry counter for how much cheap work the schedule did.
    pub fn rows_scored(&self) -> u64 {
        self.rungs
            .iter()
            .map(|r| r.pool_in as u64 * r.sample_rows as u64)
            .sum()
    }
}

fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// The first `sample` positions of a seeded Fisher–Yates permutation of
/// `0..n_rows` — a pure function of `(seed, rung)`, independent of thread
/// count. `sample >= n_rows` returns the identity order (the "exact" rung
/// scores every row, so no shuffle is needed or wanted).
pub fn subsample_rows(n_rows: usize, sample: usize, seed: u64, rung: usize) -> Vec<usize> {
    if sample >= n_rows {
        return (0..n_rows).collect();
    }
    let mut state = seed ^ (rung as u64).wrapping_mul(0xA076_1D64_78BD_642F);
    let mut idx: Vec<usize> = (0..n_rows).collect();
    for i in 0..sample {
        let j = i + (splitmix64(&mut state) % (n_rows - i) as u64) as usize;
        idx.swap(i, j);
    }
    idx.truncate(sample);
    idx
}

/// Successively halve `candidates` (column indices into `train`) down to
/// the finalist target. Returns the finalists in ascending column order
/// plus the per-rung trace. A scoring-worker panic surfaces as
/// [`ParPanic`] for the caller to degrade on.
pub fn staged_prune(
    train: &Dataset,
    candidates: &[usize],
    cfg: &StagedConfig,
    par: Parallelism,
) -> Result<(Vec<usize>, StagedReport), ParPanic> {
    let mut pool: Vec<usize> = candidates.to_vec();
    pool.sort_unstable();
    let target = cfg.finalist_target.max(1);
    let labels = train.labels();
    if pool.len() <= target || labels.is_none() {
        return Ok((pool, StagedReport { rungs: Vec::new(), short_circuited: true }));
    }
    let labels = labels.unwrap_or_default();
    let views: Vec<ColumnView<'_>> = train.column_views().collect();
    let n_rows = train.n_rows();
    let mut report = StagedReport::default();
    let mut rung = 0usize;
    while pool.len() > target {
        let sample_rows = (cfg.base_rows.max(1) << rung.min(48)).min(n_rows);
        let rows = subsample_rows(n_rows, sample_rows, cfg.seed, rung);
        let sub_labels: Vec<u8> = rows.iter().map(|&r| labels[r]).collect();
        let scores = try_par_map(par, pool.len(), |k| {
            safe_data::failpoint!(
                "select/staged-worker-panic" =>
                    panic!("injected worker panic: select/staged-worker-panic")
            );
            // Row sampling needs random access: materialize the candidate
            // column first (zero-copy when resident, per-worker scratch
            // gather when chunked). A spill-read failure panics and is
            // captured as [`ParPanic`] for the caller to degrade on.
            let mut scratch = Vec::new();
            let col = match views[pool[k]].materialize(&mut scratch) {
                Ok(c) => c,
                Err(e) => panic!("column read failed during staged pruning: {e}"),
            };
            let sub: Vec<f64> = rows.iter().map(|&r| col[r]).collect();
            information_value(&sub, &sub_labels, cfg.beta).unwrap_or(0.0)
        })?;
        // Once the sample covers every row the scores cannot sharpen
        // further: cut straight to the finalist target. Otherwise halve,
        // but never past the target.
        let keep_n = if sample_rows >= n_rows {
            target
        } else {
            pool.len().div_ceil(2).max(target)
        };
        let mut order: Vec<usize> = (0..pool.len()).collect();
        order.sort_by(|&a, &b| {
            scores[b]
                .partial_cmp(&scores[a])
                .unwrap_or(std::cmp::Ordering::Equal)
                .then(pool[a].cmp(&pool[b]))
        });
        let mut survivors: Vec<usize> = order.into_iter().take(keep_n).map(|i| pool[i]).collect();
        survivors.sort_unstable();
        report.rungs.push(RungReport {
            rung,
            sample_rows,
            pool_in: pool.len(),
            pool_out: survivors.len(),
            survivors: survivors.clone(),
        });
        pool = survivors;
        rung += 1;
    }
    Ok((pool, report))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn dataset(n_rows: usize, n_cols: usize, seed: u64) -> Dataset {
        let mut state = seed;
        let mut cols: Vec<Vec<f64>> = Vec::new();
        let labels: Vec<u8> = (0..n_rows).map(|i| (i % 2) as u8).collect();
        for c in 0..n_cols {
            cols.push(
                (0..n_rows)
                    .map(|i| {
                        let noise = (splitmix64(&mut state) % 1000) as f64 / 1000.0;
                        // Lower column indices carry more signal.
                        labels[i] as f64 * (n_cols - c) as f64 + noise * (c + 1) as f64
                    })
                    .collect(),
            );
        }
        let names = (0..n_cols).map(|c| format!("f{c}")).collect();
        Dataset::from_columns(names, cols, Some(labels)).unwrap()
    }

    #[test]
    fn halves_down_to_target() {
        let ds = dataset(600, 40, 7);
        let candidates: Vec<usize> = (0..40).collect();
        let cfg = StagedConfig { base_rows: 64, finalist_target: 8, beta: 10, seed: 3 };
        let (finalists, report) =
            staged_prune(&ds, &candidates, &cfg, Parallelism::new(1)).unwrap();
        assert_eq!(finalists.len(), 8);
        assert!(!report.short_circuited);
        assert!(report.rungs.len() >= 2, "40 → 20 → 10 → 8 needs several rungs");
        for w in report.rungs.windows(2) {
            assert!(w[1].pool_in == w[0].pool_out);
            assert!(w[1].sample_rows >= w[0].sample_rows);
        }
    }

    #[test]
    fn signal_columns_survive() {
        let ds = dataset(800, 30, 11);
        let candidates: Vec<usize> = (0..30).collect();
        let cfg = StagedConfig { base_rows: 128, finalist_target: 5, beta: 10, seed: 9 };
        let (finalists, _) = staged_prune(&ds, &candidates, &cfg, Parallelism::new(1)).unwrap();
        // The strongest-signal column (index 0) must be among the finalists.
        assert!(finalists.contains(&0), "finalists {finalists:?} lost the strongest column");
    }

    #[test]
    fn small_pool_short_circuits() {
        let ds = dataset(200, 6, 1);
        let candidates: Vec<usize> = (0..6).collect();
        let cfg = StagedConfig { base_rows: 64, finalist_target: 8, beta: 10, seed: 5 };
        let (finalists, report) =
            staged_prune(&ds, &candidates, &cfg, Parallelism::new(1)).unwrap();
        assert_eq!(finalists, candidates);
        assert!(report.short_circuited);
        assert!(report.rungs.is_empty());
    }

    #[test]
    fn unlabeled_data_short_circuits() {
        let ds = dataset(200, 12, 2);
        let unlabeled = Dataset::from_columns(
            ds.feature_names().iter().map(|s| s.to_string()).collect(),
            ds.columns().map(|c| c.to_vec()).collect(),
            None,
        )
        .unwrap();
        let candidates: Vec<usize> = (0..12).collect();
        let cfg = StagedConfig { base_rows: 32, finalist_target: 4, beta: 10, seed: 5 };
        let (finalists, report) =
            staged_prune(&unlabeled, &candidates, &cfg, Parallelism::new(1)).unwrap();
        assert_eq!(finalists, candidates, "no labels → nothing to score on");
        assert!(report.short_circuited);
    }

    #[test]
    fn subsample_is_in_range_and_unique() {
        let rows = subsample_rows(1000, 128, 42, 3);
        assert_eq!(rows.len(), 128);
        let mut seen = std::collections::HashSet::new();
        for &r in &rows {
            assert!(r < 1000);
            assert!(seen.insert(r), "duplicate row {r}");
        }
    }

    #[test]
    fn oversized_sample_is_identity() {
        assert_eq!(subsample_rows(10, 10, 1, 0), (0..10).collect::<Vec<_>>());
        assert_eq!(subsample_rows(10, 99, 1, 0), (0..10).collect::<Vec<_>>());
    }
}
