//! The learned feature-generation function Ψ.
//!
//! A [`FeaturePlan`] is the portable artifact SAFE produces: the input
//! schema, a topologically ordered list of generation steps (operator name,
//! parent features, frozen parameters), and the selected output features.
//! Plans serialize to a line-oriented text format and compile — against any
//! [`OperatorRegistry`] — into a [`CompiledPlan`] that scores whole datasets
//! or single records (the paper's *real-time inference* requirement: "once
//! an instance is inputted, the feature should be produced instantly").

use std::collections::HashMap;
use std::fmt;

use safe_data::column::ColumnRead;
use safe_data::dataset::{Dataset, FeatureMeta};
use safe_ops::op::{FittedOperator, OpError};
use safe_ops::registry::OperatorRegistry;

/// Errors from plan construction, serialization or execution.
#[derive(Debug)]
pub enum PlanError {
    /// A step references an operator absent from the registry.
    UnknownOperator(String),
    /// A step or output references an undefined feature.
    UnknownFeature(String),
    /// The dataset to transform is missing a required input column.
    MissingInput(String),
    /// A feature name contains a character the codec reserves.
    BadName(String),
    /// Text deserialization failed.
    Parse {
        /// 1-based line number.
        line: usize,
        /// Description.
        message: String,
    },
    /// Operator rehydration/application failed.
    Op(OpError),
    /// Underlying data error.
    Data(String),
}

impl fmt::Display for PlanError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PlanError::UnknownOperator(op) => write!(f, "unknown operator '{op}'"),
            PlanError::UnknownFeature(name) => write!(f, "unknown feature '{name}'"),
            PlanError::MissingInput(name) => write!(f, "dataset lacks input column '{name}'"),
            PlanError::BadName(name) => {
                write!(f, "feature name '{name}' contains a reserved character")
            }
            PlanError::Parse { line, message } => write!(f, "plan parse error, line {line}: {message}"),
            PlanError::Op(e) => write!(f, "operator error: {e}"),
            PlanError::Data(msg) => write!(f, "data error: {msg}"),
        }
    }
}

impl std::error::Error for PlanError {}

impl From<OpError> for PlanError {
    fn from(e: OpError) -> Self {
        PlanError::Op(e)
    }
}

/// One generation step.
#[derive(Debug, Clone, PartialEq)]
pub struct PlanStep {
    /// Name of the produced feature.
    pub name: String,
    /// Operator registry name.
    pub op: String,
    /// Parent feature names (inputs or earlier steps), in argument order.
    pub parents: Vec<String>,
    /// Frozen operator parameters.
    pub params: Vec<f64>,
}

/// The serializable feature-generation function Ψ.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct FeaturePlan {
    /// Names of the raw input features the plan consumes.
    pub input_names: Vec<String>,
    /// Generation steps in dependency order.
    pub steps: Vec<PlanStep>,
    /// Names of the selected output features (inputs or step names).
    pub outputs: Vec<String>,
}

fn name_ok(name: &str) -> bool {
    !name.is_empty() && !name.contains('\t') && !name.contains('\n') && !name.contains('\r')
}

impl FeaturePlan {
    /// Validate internal consistency: names are codec-safe, steps reference
    /// only earlier definitions, outputs exist.
    pub fn validate(&self) -> Result<(), PlanError> {
        let mut defined: HashMap<&str, ()> = HashMap::new();
        for n in &self.input_names {
            if !name_ok(n) {
                return Err(PlanError::BadName(n.clone()));
            }
            defined.insert(n, ());
        }
        for s in &self.steps {
            if !name_ok(&s.name) || !name_ok(&s.op) {
                return Err(PlanError::BadName(s.name.clone()));
            }
            for p in &s.parents {
                if !defined.contains_key(p.as_str()) {
                    return Err(PlanError::UnknownFeature(p.clone()));
                }
            }
            defined.insert(&s.name, ());
        }
        for o in &self.outputs {
            if !defined.contains_key(o.as_str()) {
                return Err(PlanError::UnknownFeature(o.clone()));
            }
        }
        Ok(())
    }

    /// Number of outputs that are generated (vs. passed-through originals).
    pub fn n_generated_outputs(&self) -> usize {
        let step_names: std::collections::HashSet<&str> =
            self.steps.iter().map(|s| s.name.as_str()).collect();
        self.outputs
            .iter()
            .filter(|o| step_names.contains(o.as_str()))
            .count()
    }

    /// Compile against a registry, resolving operators and parent slots.
    pub fn compile(&self, registry: &OperatorRegistry) -> Result<CompiledPlan, PlanError> {
        self.validate()?;
        let mut slot_of: HashMap<&str, usize> = HashMap::new();
        for (i, n) in self.input_names.iter().enumerate() {
            slot_of.insert(n, i);
        }
        let mut steps = Vec::with_capacity(self.steps.len());
        for (k, s) in self.steps.iter().enumerate() {
            let op = registry
                .get(&s.op)
                .ok_or_else(|| PlanError::UnknownOperator(s.op.clone()))?;
            let fitted = op.rehydrate(&s.params)?;
            let parents: Vec<usize> = s
                .parents
                .iter()
                .map(|p| {
                    slot_of
                        .get(p.as_str())
                        .copied()
                        .ok_or_else(|| PlanError::UnknownFeature(p.clone()))
                })
                .collect::<Result<_, _>>()?;
            let out_slot = self.input_names.len() + k;
            slot_of.insert(&s.name, out_slot);
            steps.push(CompiledStep {
                fitted,
                parents,
                out_slot,
            });
        }
        let outputs: Vec<usize> = self
            .outputs
            .iter()
            .map(|o| {
                slot_of
                    .get(o.as_str())
                    .copied()
                    .ok_or_else(|| PlanError::UnknownFeature(o.clone()))
            })
            .collect::<Result<_, _>>()?;
        let output_meta = self
            .outputs
            .iter()
            .map(|o| match self.steps.iter().find(|s| &s.name == o) {
                Some(s) => FeatureMeta::generated(o.clone(), s.op.clone(), s.parents.clone()),
                None => FeatureMeta::original(o.clone()),
            })
            .collect();
        Ok(CompiledPlan {
            input_names: self.input_names.clone(),
            steps,
            outputs,
            output_meta,
        })
    }

    /// Convenience: compile against the standard registry and transform a
    /// dataset.
    ///
    /// # Errors — shape-mismatch contract
    ///
    /// Shares the exact error contract of [`CompiledPlan::apply`] (it
    /// delegates to it): a dataset lacking a required input column yields
    /// [`PlanError::MissingInput`] carrying the column name; internal slot
    /// inconsistencies (corrupted plan) yield [`PlanError::Data`].
    /// Compilation failures additionally surface as
    /// [`PlanError::UnknownOperator`] / [`PlanError::UnknownFeature`].
    pub fn apply(&self, ds: &Dataset) -> Result<Dataset, PlanError> {
        self.compile(&OperatorRegistry::standard())?.apply(ds)
    }

    /// Serialize to the versioned text codec.
    pub fn to_text(&self) -> String {
        let mut out = String::from("SAFEPLAN\t1\n");
        for n in &self.input_names {
            out.push_str("INPUT\t");
            out.push_str(n);
            out.push('\n');
        }
        for s in &self.steps {
            out.push_str("STEP\t");
            out.push_str(&s.name);
            out.push('\t');
            out.push_str(&s.op);
            out.push('\t');
            out.push_str(&s.parents.len().to_string());
            for p in &s.parents {
                out.push('\t');
                out.push_str(p);
            }
            out.push('\t');
            out.push_str(&s.params.len().to_string());
            for v in &s.params {
                // Hex bit pattern: lossless f64 round trip.
                out.push('\t');
                out.push_str(&format!("{:016x}", v.to_bits()));
            }
            out.push('\n');
        }
        for o in &self.outputs {
            out.push_str("OUT\t");
            out.push_str(o);
            out.push('\n');
        }
        out
    }

    /// Parse the text codec.
    pub fn from_text(text: &str) -> Result<FeaturePlan, PlanError> {
        let mut lines = text.lines().enumerate();
        let err = |line: usize, message: &str| PlanError::Parse {
            line: line + 1,
            message: message.to_string(),
        };
        let (i, header) = lines.next().ok_or_else(|| err(0, "empty plan"))?;
        if header != "SAFEPLAN\t1" {
            return Err(err(i, "bad header (expected SAFEPLAN v1)"));
        }
        let mut plan = FeaturePlan::default();
        for (i, line) in lines {
            if line.trim().is_empty() {
                continue;
            }
            let fields: Vec<&str> = line.split('\t').collect();
            match fields[0] {
                "INPUT" if fields.len() == 2 => plan.input_names.push(fields[1].to_string()),
                "OUT" if fields.len() == 2 => plan.outputs.push(fields[1].to_string()),
                "STEP" if fields.len() >= 4 => {
                    let name = fields[1].to_string();
                    let op = fields[2].to_string();
                    let n_parents: usize = fields[3]
                        .parse()
                        .map_err(|_| err(i, "bad parent count"))?;
                    let parents_end = 4 + n_parents;
                    if fields.len() < parents_end + 1 {
                        return Err(err(i, "truncated STEP line"));
                    }
                    let parents: Vec<String> =
                        fields[4..parents_end].iter().map(|s| s.to_string()).collect();
                    let n_params: usize = fields[parents_end]
                        .parse()
                        .map_err(|_| err(i, "bad param count"))?;
                    if fields.len() != parents_end + 1 + n_params {
                        return Err(err(i, "param count mismatch"));
                    }
                    let params: Result<Vec<f64>, PlanError> = fields[parents_end + 1..]
                        .iter()
                        .map(|s| {
                            u64::from_str_radix(s, 16)
                                .map(f64::from_bits)
                                .map_err(|_| err(i, "bad param hex"))
                        })
                        .collect();
                    plan.steps.push(PlanStep {
                        name,
                        op,
                        parents,
                        params: params?,
                    });
                }
                other => return Err(err(i, &format!("unrecognized record '{other}'"))),
            }
        }
        plan.validate()?;
        Ok(plan)
    }
}

#[derive(Debug)]
struct CompiledStep {
    fitted: Box<dyn FittedOperator>,
    parents: Vec<usize>,
    out_slot: usize,
}

/// Reusable scratch space for the per-row inference path.
///
/// [`CompiledPlan::apply_row_into`] needs one working slot per feature and a
/// small argument buffer per step; allocating those per call is measurable at
/// serving rates. Create one `RowScratch` per worker (it is plan-agnostic —
/// buffers are resized to fit whichever plan uses them) and reuse it across
/// rows.
#[derive(Debug, Default, Clone)]
pub struct RowScratch {
    slots: Vec<f64>,
    args: Vec<f64>,
}

/// An executable plan: operators rehydrated, names resolved to slots.
#[derive(Debug)]
pub struct CompiledPlan {
    input_names: Vec<String>,
    steps: Vec<CompiledStep>,
    outputs: Vec<usize>,
    output_meta: Vec<FeatureMeta>,
}

impl CompiledPlan {
    /// Number of raw inputs expected.
    pub fn n_inputs(&self) -> usize {
        self.input_names.len()
    }

    /// Number of output features produced.
    pub fn n_outputs(&self) -> usize {
        self.outputs.len()
    }

    /// Transform a whole dataset (columns located by name; label carried
    /// over).
    ///
    /// # Errors — shape-mismatch contract
    ///
    /// Shared with [`FeaturePlan::apply`] and the row-path variants
    /// ([`CompiledPlan::apply_row`], [`CompiledPlan::apply_row_into`],
    /// [`CompiledPlan::apply_rows`]): an input of the wrong shape — a
    /// missing column here, a wrong value count on the row paths — yields
    /// [`PlanError::MissingInput`]; structurally inconsistent input (ragged
    /// batch, corrupted plan slots) yields [`PlanError::Data`].
    pub fn apply(&self, ds: &Dataset) -> Result<Dataset, PlanError> {
        let n_slots = self.input_names.len() + self.steps.len();
        let mut slots: Vec<Option<Vec<f64>>> = Vec::with_capacity(n_slots);
        for name in &self.input_names {
            // Gather through the column view so chunked/spilled inputs work
            // too: plan application materializes exactly its input columns
            // (memory bounded by plan width, not table width).
            let view = ds
                .column_view_by_name(name)
                .map_err(|_| PlanError::MissingInput(name.clone()))?;
            let mut col = Vec::new();
            view.gather_into(&mut col)
                .map_err(|e| PlanError::Data(e.to_string()))?;
            slots.push(Some(col));
        }
        slots.resize_with(n_slots, || None);
        // Compilation orders steps topologically, so parent slots are always
        // filled; report (never panic) if a corrupted plan breaks that.
        let stale = || PlanError::Data("plan step referenced an uncomputed slot".into());
        for step in &self.steps {
            let parent_cols: Vec<&[f64]> = step
                .parents
                .iter()
                .map(|&p| slots.get(p).and_then(|s| s.as_deref()).ok_or_else(stale))
                .collect::<Result<_, _>>()?;
            let values = step.fitted.apply(&parent_cols);
            slots[step.out_slot] = Some(values);
        }
        let mut out = Dataset::with_rows(ds.n_rows());
        for (&slot, meta) in self.outputs.iter().zip(&self.output_meta) {
            let col = slots.get(slot).and_then(|s| s.as_ref()).ok_or_else(stale)?;
            out.push_column(meta.clone(), col.clone())
                .map_err(|e| PlanError::Data(e.to_string()))?;
        }
        if let Some(labels) = ds.labels() {
            out.set_labels(labels.to_vec())
                .map_err(|e| PlanError::Data(e.to_string()))?;
        }
        Ok(out)
    }

    /// Transform one record (values aligned with the plan's input order) —
    /// the real-time inference path.
    ///
    /// Convenience wrapper over [`CompiledPlan::apply_row_into`] that pays
    /// two allocations per call (scratch + output). Hot loops should hold a
    /// [`RowScratch`] and an output buffer and call `apply_row_into`
    /// directly.
    ///
    /// Errors follow the shape-mismatch contract documented on
    /// [`CompiledPlan::apply`].
    pub fn apply_row(&self, row: &[f64]) -> Result<Vec<f64>, PlanError> {
        let mut scratch = RowScratch::default();
        let mut out = Vec::with_capacity(self.outputs.len());
        self.apply_row_into(row, &mut scratch, &mut out)?;
        Ok(out)
    }

    /// Transform one record into a caller-owned buffer, reusing scratch
    /// space across calls — the allocation-free serving path.
    ///
    /// `out` is cleared and filled with the [`CompiledPlan::n_outputs`]
    /// feature values. Output bits are identical to [`CompiledPlan::apply`]
    /// on the same values: every operator's column path is defined as the
    /// per-row map of its row path.
    ///
    /// Errors follow the shape-mismatch contract documented on
    /// [`CompiledPlan::apply`].
    pub fn apply_row_into(
        &self,
        row: &[f64],
        scratch: &mut RowScratch,
        out: &mut Vec<f64>,
    ) -> Result<(), PlanError> {
        if row.len() != self.input_names.len() {
            return Err(PlanError::MissingInput(format!(
                "expected {} input values, got {}",
                self.input_names.len(),
                row.len()
            )));
        }
        self.eval_row(row, scratch);
        out.clear();
        out.extend(self.outputs.iter().map(|&s| scratch.slots[s]));
        Ok(())
    }

    /// Transform a row-major batch without per-row allocation.
    ///
    /// `rows` holds `rows.len() / n_cols` records of `n_cols` values each,
    /// aligned with the plan's input order; `out` is cleared and filled
    /// row-major with [`CompiledPlan::n_outputs`] values per record.
    ///
    /// Errors follow the shape-mismatch contract documented on
    /// [`CompiledPlan::apply`]: `n_cols` differing from
    /// [`CompiledPlan::n_inputs`] yields [`PlanError::MissingInput`], a
    /// ragged batch (`rows.len()` not a multiple of `n_cols`) yields
    /// [`PlanError::Data`].
    pub fn apply_rows(
        &self,
        rows: &[f64],
        n_cols: usize,
        out: &mut Vec<f64>,
    ) -> Result<(), PlanError> {
        if n_cols != self.input_names.len() {
            return Err(PlanError::MissingInput(format!(
                "expected {} input columns, got {}",
                self.input_names.len(),
                n_cols
            )));
        }
        out.clear();
        if n_cols == 0 {
            if !rows.is_empty() {
                return Err(PlanError::Data(
                    "non-empty batch for a zero-input plan".into(),
                ));
            }
            return Ok(());
        }
        if !rows.len().is_multiple_of(n_cols) {
            return Err(PlanError::Data(format!(
                "ragged batch: {} values is not a multiple of {} columns",
                rows.len(),
                n_cols
            )));
        }
        let mut scratch = RowScratch::default();
        out.reserve((rows.len() / n_cols) * self.outputs.len());
        for row in rows.chunks_exact(n_cols) {
            self.eval_row(row, &mut scratch);
            out.extend(self.outputs.iter().map(|&s| scratch.slots[s]));
        }
        Ok(())
    }

    /// Core row evaluation. Caller guarantees `row.len() == n_inputs`.
    fn eval_row(&self, row: &[f64], scratch: &mut RowScratch) {
        let RowScratch { slots, args } = scratch;
        let n_slots = self.input_names.len() + self.steps.len();
        slots.clear();
        slots.resize(n_slots, f64::NAN);
        slots[..row.len()].copy_from_slice(row);
        for step in &self.steps {
            args.clear();
            args.extend(step.parents.iter().map(|&p| slots[p]));
            slots[step.out_slot] = step.fitted.apply_row(args);
        }
    }

    /// Input feature names, in expected order.
    pub fn input_names(&self) -> &[String] {
        &self.input_names
    }

    /// Output metadata (name + provenance), in output order.
    pub fn output_meta(&self) -> &[FeatureMeta] {
        &self.output_meta
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_plan() -> FeaturePlan {
        FeaturePlan {
            input_names: vec!["a".into(), "b".into()],
            steps: vec![
                PlanStep {
                    name: "mul(a,b)".into(),
                    op: "mul".into(),
                    parents: vec!["a".into(), "b".into()],
                    params: vec![],
                },
                PlanStep {
                    name: "log(mul(a,b))".into(),
                    op: "log".into(),
                    parents: vec!["mul(a,b)".into()],
                    params: vec![],
                },
            ],
            outputs: vec!["a".into(), "mul(a,b)".into(), "log(mul(a,b))".into()],
        }
    }

    fn sample_dataset() -> Dataset {
        Dataset::from_columns(
            vec!["a".into(), "b".into()],
            vec![vec![1.0, 2.0, 3.0], vec![4.0, 5.0, 6.0]],
            Some(vec![0, 1, 0]),
        )
        .unwrap()
    }

    #[test]
    fn apply_computes_chained_steps() {
        let out = sample_plan().apply(&sample_dataset()).unwrap();
        assert_eq!(out.n_cols(), 3);
        assert_eq!(out.column_by_name("a").unwrap(), &[1.0, 2.0, 3.0]);
        assert_eq!(out.column_by_name("mul(a,b)").unwrap(), &[4.0, 10.0, 18.0]);
        let log_col = out.column_by_name("log(mul(a,b))").unwrap();
        assert!((log_col[0] - (5.0f64).ln()).abs() < 1e-12);
        assert_eq!(out.labels().unwrap(), &[0, 1, 0]);
    }

    #[test]
    fn provenance_is_preserved() {
        let out = sample_plan().apply(&sample_dataset()).unwrap();
        assert_eq!(out.n_generated(), 2);
        assert!(!out.meta()[0].origin.is_generated());
    }

    #[test]
    fn apply_row_matches_batch() {
        let plan = sample_plan();
        let compiled = plan.compile(&OperatorRegistry::standard()).unwrap();
        let ds = sample_dataset();
        let batch = compiled.apply(&ds).unwrap();
        for i in 0..ds.n_rows() {
            let row_out = compiled.apply_row(&ds.row(i)).unwrap();
            for (c, &v) in row_out.iter().enumerate() {
                assert!((batch.column(c).unwrap()[i] - v).abs() < 1e-15);
            }
        }
    }

    /// 10k-row no-regression check for the `apply_row` reimplementation on
    /// top of `apply_row_into`: the row path, the buffer-reuse path, and the
    /// flat-batch path must all match the column path bit-for-bit.
    #[test]
    fn row_paths_match_batch_on_10k_rows() {
        let plan = sample_plan();
        let compiled = plan.compile(&OperatorRegistry::standard()).unwrap();
        let n = 10_000usize;
        let mut a = Vec::with_capacity(n);
        let mut b = Vec::with_capacity(n);
        for i in 0..n {
            let x = i as f64;
            a.push((x * 0.37).sin() * 10.0);
            b.push((x * 0.11).cos() * 5.0 + 0.25);
        }
        let ds = Dataset::from_columns(vec!["a".into(), "b".into()], vec![a, b], None).unwrap();
        let batch = compiled.apply(&ds).unwrap();

        let mut scratch = RowScratch::default();
        let mut row_out = Vec::new();
        let mut flat = Vec::with_capacity(n * 2);
        for i in 0..n {
            let row = ds.row(i);
            flat.extend_from_slice(&row);
            // Allocating path.
            let alloc_out = compiled.apply_row(&row).unwrap();
            // Buffer-reuse path.
            compiled.apply_row_into(&row, &mut scratch, &mut row_out).unwrap();
            assert_eq!(alloc_out.len(), compiled.n_outputs());
            for c in 0..compiled.n_outputs() {
                let want = batch.column(c).unwrap()[i].to_bits();
                assert_eq!(alloc_out[c].to_bits(), want, "apply_row row {i} col {c}");
                assert_eq!(row_out[c].to_bits(), want, "apply_row_into row {i} col {c}");
            }
        }
        // Flat-batch path.
        let mut flat_out = Vec::new();
        compiled.apply_rows(&flat, 2, &mut flat_out).unwrap();
        assert_eq!(flat_out.len(), n * compiled.n_outputs());
        for i in 0..n {
            for c in 0..compiled.n_outputs() {
                assert_eq!(
                    flat_out[i * compiled.n_outputs() + c].to_bits(),
                    batch.column(c).unwrap()[i].to_bits(),
                    "apply_rows row {i} col {c}"
                );
            }
        }
    }

    #[test]
    fn row_shape_mismatches_share_the_apply_contract() {
        let compiled = sample_plan()
            .compile(&OperatorRegistry::standard())
            .unwrap();
        assert!(matches!(
            compiled.apply_row(&[1.0]).unwrap_err(),
            PlanError::MissingInput(_)
        ));
        let mut out = Vec::new();
        assert!(matches!(
            compiled
                .apply_row_into(&[1.0, 2.0, 3.0], &mut RowScratch::default(), &mut out)
                .unwrap_err(),
            PlanError::MissingInput(_)
        ));
        // Wrong column count → MissingInput, like a missing dataset column.
        assert!(matches!(
            compiled.apply_rows(&[1.0, 2.0, 3.0], 3, &mut out).unwrap_err(),
            PlanError::MissingInput(_)
        ));
        // Ragged flat batch → Data, like a corrupted plan.
        assert!(matches!(
            compiled.apply_rows(&[1.0, 2.0, 3.0], 2, &mut out).unwrap_err(),
            PlanError::Data(_)
        ));
    }

    #[test]
    fn scratch_is_plan_agnostic() {
        // One scratch serves two plans of different sizes in alternation.
        let small = FeaturePlan {
            input_names: vec!["a".into()],
            steps: vec![],
            outputs: vec!["a".into()],
        };
        let small = small.compile(&OperatorRegistry::standard()).unwrap();
        let big = sample_plan().compile(&OperatorRegistry::standard()).unwrap();
        let mut scratch = RowScratch::default();
        let mut out = Vec::new();
        for i in 0..4 {
            big.apply_row_into(&[1.0 + i as f64, 2.0], &mut scratch, &mut out)
                .unwrap();
            assert_eq!(out.len(), 3);
            small.apply_row_into(&[7.0], &mut scratch, &mut out).unwrap();
            assert_eq!(out, vec![7.0]);
        }
    }

    #[test]
    fn text_round_trip_is_exact() {
        let mut plan = sample_plan();
        // Include gnarly params to prove hex round-trip is lossless.
        plan.steps.push(PlanStep {
            name: "zscore(a)".into(),
            op: "zscore".into(),
            parents: vec!["a".into()],
            params: vec![0.1 + 0.2, f64::MIN_POSITIVE, -0.0, 1e300],
        });
        plan.outputs.push("zscore(a)".into());
        let text = plan.to_text();
        let back = FeaturePlan::from_text(&text).unwrap();
        assert_eq!(plan, back);
    }

    #[test]
    fn column_order_independence() {
        // apply() locates inputs by name, so a permuted dataset still works.
        let plan = sample_plan();
        let swapped = Dataset::from_columns(
            vec!["b".into(), "a".into()],
            vec![vec![4.0], vec![1.0]],
            None,
        )
        .unwrap();
        let out = plan.apply(&swapped).unwrap();
        assert_eq!(out.column_by_name("mul(a,b)").unwrap(), &[4.0]);
    }

    #[test]
    fn missing_input_is_reported() {
        let plan = sample_plan();
        let bad = Dataset::from_columns(vec!["a".into()], vec![vec![1.0]], None).unwrap();
        assert!(matches!(
            plan.apply(&bad).unwrap_err(),
            PlanError::MissingInput(name) if name == "b"
        ));
    }

    #[test]
    fn forward_reference_rejected() {
        let plan = FeaturePlan {
            input_names: vec!["a".into()],
            steps: vec![PlanStep {
                name: "x".into(),
                op: "log".into(),
                parents: vec!["y".into()], // never defined
                params: vec![],
            }],
            outputs: vec!["x".into()],
        };
        assert!(matches!(
            plan.validate().unwrap_err(),
            PlanError::UnknownFeature(n) if n == "y"
        ));
    }

    #[test]
    fn unknown_operator_rejected_at_compile() {
        let plan = FeaturePlan {
            input_names: vec!["a".into()],
            steps: vec![PlanStep {
                name: "x".into(),
                op: "teleport".into(),
                parents: vec!["a".into()],
                params: vec![],
            }],
            outputs: vec!["x".into()],
        };
        assert!(matches!(
            plan.compile(&OperatorRegistry::standard()).unwrap_err(),
            PlanError::UnknownOperator(_)
        ));
    }

    #[test]
    fn bad_text_is_rejected_with_line_numbers() {
        assert!(FeaturePlan::from_text("").is_err());
        assert!(FeaturePlan::from_text("NOTAPLAN\t1\n").is_err());
        let err = FeaturePlan::from_text("SAFEPLAN\t1\nBOGUS\tx\n").unwrap_err();
        assert!(matches!(err, PlanError::Parse { line: 2, .. }));
        // Truncated STEP.
        assert!(FeaturePlan::from_text("SAFEPLAN\t1\nINPUT\ta\nSTEP\tx\tlog\t5\ta\n").is_err());
    }

    #[test]
    fn reserved_characters_in_names_rejected() {
        let plan = FeaturePlan {
            input_names: vec!["bad\tname".into()],
            steps: vec![],
            outputs: vec![],
        };
        assert!(matches!(plan.validate().unwrap_err(), PlanError::BadName(_)));
    }

    #[test]
    fn stateful_step_round_trips_through_text() {
        // zscore with params must produce identical outputs after recode.
        let plan = FeaturePlan {
            input_names: vec!["a".into()],
            steps: vec![PlanStep {
                name: "zscore(a)".into(),
                op: "zscore".into(),
                parents: vec!["a".into()],
                params: vec![10.0, 2.0],
            }],
            outputs: vec!["zscore(a)".into()],
        };
        let ds =
            Dataset::from_columns(vec!["a".into()], vec![vec![8.0, 12.0]], None).unwrap();
        let direct = plan.apply(&ds).unwrap();
        let recoded = FeaturePlan::from_text(&plan.to_text()).unwrap().apply(&ds).unwrap();
        assert_eq!(
            direct.column(0).unwrap(),
            recoded.column(0).unwrap()
        );
        assert_eq!(direct.column(0).unwrap(), &[-1.0, 1.0]);
    }

    #[test]
    fn n_generated_outputs_counts_steps_only() {
        assert_eq!(sample_plan().n_generated_outputs(), 2);
    }
}
