//! The learned feature-generation function Ψ.
//!
//! A [`FeaturePlan`] is the portable artifact SAFE produces: the input
//! schema, a topologically ordered list of generation steps (operator name,
//! parent features, frozen parameters), and the selected output features.
//! Plans serialize to a line-oriented text format and compile — against any
//! [`OperatorRegistry`] — into a [`CompiledPlan`] that scores whole datasets
//! or single records (the paper's *real-time inference* requirement: "once
//! an instance is inputted, the feature should be produced instantly").

use std::collections::HashMap;
use std::fmt;

use safe_data::dataset::{Dataset, FeatureMeta};
use safe_ops::op::{FittedOperator, OpError};
use safe_ops::registry::OperatorRegistry;

/// Errors from plan construction, serialization or execution.
#[derive(Debug)]
pub enum PlanError {
    /// A step references an operator absent from the registry.
    UnknownOperator(String),
    /// A step or output references an undefined feature.
    UnknownFeature(String),
    /// The dataset to transform is missing a required input column.
    MissingInput(String),
    /// A feature name contains a character the codec reserves.
    BadName(String),
    /// Text deserialization failed.
    Parse {
        /// 1-based line number.
        line: usize,
        /// Description.
        message: String,
    },
    /// Operator rehydration/application failed.
    Op(OpError),
    /// Underlying data error.
    Data(String),
}

impl fmt::Display for PlanError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PlanError::UnknownOperator(op) => write!(f, "unknown operator '{op}'"),
            PlanError::UnknownFeature(name) => write!(f, "unknown feature '{name}'"),
            PlanError::MissingInput(name) => write!(f, "dataset lacks input column '{name}'"),
            PlanError::BadName(name) => {
                write!(f, "feature name '{name}' contains a reserved character")
            }
            PlanError::Parse { line, message } => write!(f, "plan parse error, line {line}: {message}"),
            PlanError::Op(e) => write!(f, "operator error: {e}"),
            PlanError::Data(msg) => write!(f, "data error: {msg}"),
        }
    }
}

impl std::error::Error for PlanError {}

impl From<OpError> for PlanError {
    fn from(e: OpError) -> Self {
        PlanError::Op(e)
    }
}

/// One generation step.
#[derive(Debug, Clone, PartialEq)]
pub struct PlanStep {
    /// Name of the produced feature.
    pub name: String,
    /// Operator registry name.
    pub op: String,
    /// Parent feature names (inputs or earlier steps), in argument order.
    pub parents: Vec<String>,
    /// Frozen operator parameters.
    pub params: Vec<f64>,
}

/// The serializable feature-generation function Ψ.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct FeaturePlan {
    /// Names of the raw input features the plan consumes.
    pub input_names: Vec<String>,
    /// Generation steps in dependency order.
    pub steps: Vec<PlanStep>,
    /// Names of the selected output features (inputs or step names).
    pub outputs: Vec<String>,
}

fn name_ok(name: &str) -> bool {
    !name.is_empty() && !name.contains('\t') && !name.contains('\n') && !name.contains('\r')
}

impl FeaturePlan {
    /// Validate internal consistency: names are codec-safe, steps reference
    /// only earlier definitions, outputs exist.
    pub fn validate(&self) -> Result<(), PlanError> {
        let mut defined: HashMap<&str, ()> = HashMap::new();
        for n in &self.input_names {
            if !name_ok(n) {
                return Err(PlanError::BadName(n.clone()));
            }
            defined.insert(n, ());
        }
        for s in &self.steps {
            if !name_ok(&s.name) || !name_ok(&s.op) {
                return Err(PlanError::BadName(s.name.clone()));
            }
            for p in &s.parents {
                if !defined.contains_key(p.as_str()) {
                    return Err(PlanError::UnknownFeature(p.clone()));
                }
            }
            defined.insert(&s.name, ());
        }
        for o in &self.outputs {
            if !defined.contains_key(o.as_str()) {
                return Err(PlanError::UnknownFeature(o.clone()));
            }
        }
        Ok(())
    }

    /// Number of outputs that are generated (vs. passed-through originals).
    pub fn n_generated_outputs(&self) -> usize {
        let step_names: std::collections::HashSet<&str> =
            self.steps.iter().map(|s| s.name.as_str()).collect();
        self.outputs
            .iter()
            .filter(|o| step_names.contains(o.as_str()))
            .count()
    }

    /// Compile against a registry, resolving operators and parent slots.
    pub fn compile(&self, registry: &OperatorRegistry) -> Result<CompiledPlan, PlanError> {
        self.validate()?;
        let mut slot_of: HashMap<&str, usize> = HashMap::new();
        for (i, n) in self.input_names.iter().enumerate() {
            slot_of.insert(n, i);
        }
        let mut steps = Vec::with_capacity(self.steps.len());
        for (k, s) in self.steps.iter().enumerate() {
            let op = registry
                .get(&s.op)
                .ok_or_else(|| PlanError::UnknownOperator(s.op.clone()))?;
            let fitted = op.rehydrate(&s.params)?;
            let parents: Vec<usize> = s
                .parents
                .iter()
                .map(|p| {
                    slot_of
                        .get(p.as_str())
                        .copied()
                        .ok_or_else(|| PlanError::UnknownFeature(p.clone()))
                })
                .collect::<Result<_, _>>()?;
            let out_slot = self.input_names.len() + k;
            slot_of.insert(&s.name, out_slot);
            steps.push(CompiledStep {
                fitted,
                parents,
                out_slot,
            });
        }
        let outputs: Vec<usize> = self
            .outputs
            .iter()
            .map(|o| {
                slot_of
                    .get(o.as_str())
                    .copied()
                    .ok_or_else(|| PlanError::UnknownFeature(o.clone()))
            })
            .collect::<Result<_, _>>()?;
        let output_meta = self
            .outputs
            .iter()
            .map(|o| match self.steps.iter().find(|s| &s.name == o) {
                Some(s) => FeatureMeta::generated(o.clone(), s.op.clone(), s.parents.clone()),
                None => FeatureMeta::original(o.clone()),
            })
            .collect();
        Ok(CompiledPlan {
            input_names: self.input_names.clone(),
            steps,
            outputs,
            output_meta,
        })
    }

    /// Convenience: compile against the standard registry and transform a
    /// dataset.
    pub fn apply(&self, ds: &Dataset) -> Result<Dataset, PlanError> {
        self.compile(&OperatorRegistry::standard())?.apply(ds)
    }

    /// Serialize to the versioned text codec.
    pub fn to_text(&self) -> String {
        let mut out = String::from("SAFEPLAN\t1\n");
        for n in &self.input_names {
            out.push_str("INPUT\t");
            out.push_str(n);
            out.push('\n');
        }
        for s in &self.steps {
            out.push_str("STEP\t");
            out.push_str(&s.name);
            out.push('\t');
            out.push_str(&s.op);
            out.push('\t');
            out.push_str(&s.parents.len().to_string());
            for p in &s.parents {
                out.push('\t');
                out.push_str(p);
            }
            out.push('\t');
            out.push_str(&s.params.len().to_string());
            for v in &s.params {
                // Hex bit pattern: lossless f64 round trip.
                out.push('\t');
                out.push_str(&format!("{:016x}", v.to_bits()));
            }
            out.push('\n');
        }
        for o in &self.outputs {
            out.push_str("OUT\t");
            out.push_str(o);
            out.push('\n');
        }
        out
    }

    /// Parse the text codec.
    pub fn from_text(text: &str) -> Result<FeaturePlan, PlanError> {
        let mut lines = text.lines().enumerate();
        let err = |line: usize, message: &str| PlanError::Parse {
            line: line + 1,
            message: message.to_string(),
        };
        let (i, header) = lines.next().ok_or_else(|| err(0, "empty plan"))?;
        if header != "SAFEPLAN\t1" {
            return Err(err(i, "bad header (expected SAFEPLAN v1)"));
        }
        let mut plan = FeaturePlan::default();
        for (i, line) in lines {
            if line.trim().is_empty() {
                continue;
            }
            let fields: Vec<&str> = line.split('\t').collect();
            match fields[0] {
                "INPUT" if fields.len() == 2 => plan.input_names.push(fields[1].to_string()),
                "OUT" if fields.len() == 2 => plan.outputs.push(fields[1].to_string()),
                "STEP" if fields.len() >= 4 => {
                    let name = fields[1].to_string();
                    let op = fields[2].to_string();
                    let n_parents: usize = fields[3]
                        .parse()
                        .map_err(|_| err(i, "bad parent count"))?;
                    let parents_end = 4 + n_parents;
                    if fields.len() < parents_end + 1 {
                        return Err(err(i, "truncated STEP line"));
                    }
                    let parents: Vec<String> =
                        fields[4..parents_end].iter().map(|s| s.to_string()).collect();
                    let n_params: usize = fields[parents_end]
                        .parse()
                        .map_err(|_| err(i, "bad param count"))?;
                    if fields.len() != parents_end + 1 + n_params {
                        return Err(err(i, "param count mismatch"));
                    }
                    let params: Result<Vec<f64>, PlanError> = fields[parents_end + 1..]
                        .iter()
                        .map(|s| {
                            u64::from_str_radix(s, 16)
                                .map(f64::from_bits)
                                .map_err(|_| err(i, "bad param hex"))
                        })
                        .collect();
                    plan.steps.push(PlanStep {
                        name,
                        op,
                        parents,
                        params: params?,
                    });
                }
                other => return Err(err(i, &format!("unrecognized record '{other}'"))),
            }
        }
        plan.validate()?;
        Ok(plan)
    }
}

#[derive(Debug)]
struct CompiledStep {
    fitted: Box<dyn FittedOperator>,
    parents: Vec<usize>,
    out_slot: usize,
}

/// An executable plan: operators rehydrated, names resolved to slots.
#[derive(Debug)]
pub struct CompiledPlan {
    input_names: Vec<String>,
    steps: Vec<CompiledStep>,
    outputs: Vec<usize>,
    output_meta: Vec<FeatureMeta>,
}

impl CompiledPlan {
    /// Number of raw inputs expected.
    pub fn n_inputs(&self) -> usize {
        self.input_names.len()
    }

    /// Number of output features produced.
    pub fn n_outputs(&self) -> usize {
        self.outputs.len()
    }

    /// Transform a whole dataset (columns located by name; label carried
    /// over).
    pub fn apply(&self, ds: &Dataset) -> Result<Dataset, PlanError> {
        let n_slots = self.input_names.len() + self.steps.len();
        let mut slots: Vec<Option<Vec<f64>>> = Vec::with_capacity(n_slots);
        for name in &self.input_names {
            let col = ds
                .column_by_name(name)
                .map_err(|_| PlanError::MissingInput(name.clone()))?;
            slots.push(Some(col.to_vec()));
        }
        slots.resize_with(n_slots, || None);
        // Compilation orders steps topologically, so parent slots are always
        // filled; report (never panic) if a corrupted plan breaks that.
        let stale = || PlanError::Data("plan step referenced an uncomputed slot".into());
        for step in &self.steps {
            let parent_cols: Vec<&[f64]> = step
                .parents
                .iter()
                .map(|&p| slots.get(p).and_then(|s| s.as_deref()).ok_or_else(stale))
                .collect::<Result<_, _>>()?;
            let values = step.fitted.apply(&parent_cols);
            slots[step.out_slot] = Some(values);
        }
        let mut out = Dataset::with_rows(ds.n_rows());
        for (&slot, meta) in self.outputs.iter().zip(&self.output_meta) {
            let col = slots.get(slot).and_then(|s| s.as_ref()).ok_or_else(stale)?;
            out.push_column(meta.clone(), col.clone())
                .map_err(|e| PlanError::Data(e.to_string()))?;
        }
        if let Some(labels) = ds.labels() {
            out.set_labels(labels.to_vec())
                .map_err(|e| PlanError::Data(e.to_string()))?;
        }
        Ok(out)
    }

    /// Transform one record (values aligned with the plan's input order) —
    /// the real-time inference path.
    pub fn apply_row(&self, row: &[f64]) -> Result<Vec<f64>, PlanError> {
        if row.len() != self.input_names.len() {
            return Err(PlanError::MissingInput(format!(
                "expected {} input values, got {}",
                self.input_names.len(),
                row.len()
            )));
        }
        let n_slots = self.input_names.len() + self.steps.len();
        let mut slots = vec![f64::NAN; n_slots];
        slots[..row.len()].copy_from_slice(row);
        let mut args = Vec::new();
        for step in &self.steps {
            args.clear();
            args.extend(step.parents.iter().map(|&p| slots[p]));
            slots[step.out_slot] = step.fitted.apply_row(&args);
        }
        Ok(self.outputs.iter().map(|&s| slots[s]).collect())
    }

    /// Input feature names, in expected order.
    pub fn input_names(&self) -> &[String] {
        &self.input_names
    }

    /// Output metadata (name + provenance), in output order.
    pub fn output_meta(&self) -> &[FeatureMeta] {
        &self.output_meta
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_plan() -> FeaturePlan {
        FeaturePlan {
            input_names: vec!["a".into(), "b".into()],
            steps: vec![
                PlanStep {
                    name: "mul(a,b)".into(),
                    op: "mul".into(),
                    parents: vec!["a".into(), "b".into()],
                    params: vec![],
                },
                PlanStep {
                    name: "log(mul(a,b))".into(),
                    op: "log".into(),
                    parents: vec!["mul(a,b)".into()],
                    params: vec![],
                },
            ],
            outputs: vec!["a".into(), "mul(a,b)".into(), "log(mul(a,b))".into()],
        }
    }

    fn sample_dataset() -> Dataset {
        Dataset::from_columns(
            vec!["a".into(), "b".into()],
            vec![vec![1.0, 2.0, 3.0], vec![4.0, 5.0, 6.0]],
            Some(vec![0, 1, 0]),
        )
        .unwrap()
    }

    #[test]
    fn apply_computes_chained_steps() {
        let out = sample_plan().apply(&sample_dataset()).unwrap();
        assert_eq!(out.n_cols(), 3);
        assert_eq!(out.column_by_name("a").unwrap(), &[1.0, 2.0, 3.0]);
        assert_eq!(out.column_by_name("mul(a,b)").unwrap(), &[4.0, 10.0, 18.0]);
        let log_col = out.column_by_name("log(mul(a,b))").unwrap();
        assert!((log_col[0] - (5.0f64).ln()).abs() < 1e-12);
        assert_eq!(out.labels().unwrap(), &[0, 1, 0]);
    }

    #[test]
    fn provenance_is_preserved() {
        let out = sample_plan().apply(&sample_dataset()).unwrap();
        assert_eq!(out.n_generated(), 2);
        assert!(!out.meta()[0].origin.is_generated());
    }

    #[test]
    fn apply_row_matches_batch() {
        let plan = sample_plan();
        let compiled = plan.compile(&OperatorRegistry::standard()).unwrap();
        let ds = sample_dataset();
        let batch = compiled.apply(&ds).unwrap();
        for i in 0..ds.n_rows() {
            let row_out = compiled.apply_row(&ds.row(i)).unwrap();
            for (c, &v) in row_out.iter().enumerate() {
                assert!((batch.column(c).unwrap()[i] - v).abs() < 1e-15);
            }
        }
    }

    #[test]
    fn text_round_trip_is_exact() {
        let mut plan = sample_plan();
        // Include gnarly params to prove hex round-trip is lossless.
        plan.steps.push(PlanStep {
            name: "zscore(a)".into(),
            op: "zscore".into(),
            parents: vec!["a".into()],
            params: vec![0.1 + 0.2, f64::MIN_POSITIVE, -0.0, 1e300],
        });
        plan.outputs.push("zscore(a)".into());
        let text = plan.to_text();
        let back = FeaturePlan::from_text(&text).unwrap();
        assert_eq!(plan, back);
    }

    #[test]
    fn column_order_independence() {
        // apply() locates inputs by name, so a permuted dataset still works.
        let plan = sample_plan();
        let swapped = Dataset::from_columns(
            vec!["b".into(), "a".into()],
            vec![vec![4.0], vec![1.0]],
            None,
        )
        .unwrap();
        let out = plan.apply(&swapped).unwrap();
        assert_eq!(out.column_by_name("mul(a,b)").unwrap(), &[4.0]);
    }

    #[test]
    fn missing_input_is_reported() {
        let plan = sample_plan();
        let bad = Dataset::from_columns(vec!["a".into()], vec![vec![1.0]], None).unwrap();
        assert!(matches!(
            plan.apply(&bad).unwrap_err(),
            PlanError::MissingInput(name) if name == "b"
        ));
    }

    #[test]
    fn forward_reference_rejected() {
        let plan = FeaturePlan {
            input_names: vec!["a".into()],
            steps: vec![PlanStep {
                name: "x".into(),
                op: "log".into(),
                parents: vec!["y".into()], // never defined
                params: vec![],
            }],
            outputs: vec!["x".into()],
        };
        assert!(matches!(
            plan.validate().unwrap_err(),
            PlanError::UnknownFeature(n) if n == "y"
        ));
    }

    #[test]
    fn unknown_operator_rejected_at_compile() {
        let plan = FeaturePlan {
            input_names: vec!["a".into()],
            steps: vec![PlanStep {
                name: "x".into(),
                op: "teleport".into(),
                parents: vec!["a".into()],
                params: vec![],
            }],
            outputs: vec!["x".into()],
        };
        assert!(matches!(
            plan.compile(&OperatorRegistry::standard()).unwrap_err(),
            PlanError::UnknownOperator(_)
        ));
    }

    #[test]
    fn bad_text_is_rejected_with_line_numbers() {
        assert!(FeaturePlan::from_text("").is_err());
        assert!(FeaturePlan::from_text("NOTAPLAN\t1\n").is_err());
        let err = FeaturePlan::from_text("SAFEPLAN\t1\nBOGUS\tx\n").unwrap_err();
        assert!(matches!(err, PlanError::Parse { line: 2, .. }));
        // Truncated STEP.
        assert!(FeaturePlan::from_text("SAFEPLAN\t1\nINPUT\ta\nSTEP\tx\tlog\t5\ta\n").is_err());
    }

    #[test]
    fn reserved_characters_in_names_rejected() {
        let plan = FeaturePlan {
            input_names: vec!["bad\tname".into()],
            steps: vec![],
            outputs: vec![],
        };
        assert!(matches!(plan.validate().unwrap_err(), PlanError::BadName(_)));
    }

    #[test]
    fn stateful_step_round_trips_through_text() {
        // zscore with params must produce identical outputs after recode.
        let plan = FeaturePlan {
            input_names: vec!["a".into()],
            steps: vec![PlanStep {
                name: "zscore(a)".into(),
                op: "zscore".into(),
                parents: vec!["a".into()],
                params: vec![10.0, 2.0],
            }],
            outputs: vec!["zscore(a)".into()],
        };
        let ds =
            Dataset::from_columns(vec!["a".into()], vec![vec![8.0, 12.0]], None).unwrap();
        let direct = plan.apply(&ds).unwrap();
        let recoded = FeaturePlan::from_text(&plan.to_text()).unwrap().apply(&ds).unwrap();
        assert_eq!(
            direct.column(0).unwrap(),
            recoded.column(0).unwrap()
        );
        assert_eq!(direct.column(0).unwrap(), &[-1.0, 1.0]);
    }

    #[test]
    fn n_generated_outputs_counts_steps_only() {
        assert_eq!(sample_plan().n_generated_outputs(), 2);
    }
}
