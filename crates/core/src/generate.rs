//! Feature generation (Section IV-B3): apply the operator set to the ranked
//! feature combinations.
//!
//! An arity-k combination meets every arity-k operator. Commutative
//! operators see each combination once; non-commutative operators (−, ÷,
//! the group-bys, …) see every argument ordering, matching the paper's
//! convention that such operators "will be treated as multiple different
//! operators". γ combinations with the four arithmetic operators therefore
//! yield up to `γ₂ × |O₂|` new features with `−` and `÷` counted twice.

use std::collections::HashSet;

use safe_data::column::{ColumnRead, ColumnView};
use safe_data::dataset::Dataset;
use safe_ops::registry::OperatorRegistry;
use safe_stats::par::{ParPanic, Parallelism};

use crate::combine::Combination;

/// One freshly generated feature: provenance, frozen operator parameters,
/// and materialized train/valid columns.
#[derive(Debug)]
pub struct GeneratedFeature {
    /// Canonical name, e.g. `"div(x3,x7)"`.
    pub name: String,
    /// Operator registry name.
    pub op: String,
    /// Parent feature names in argument order.
    pub parents: Vec<String>,
    /// Frozen operator parameters (for plan serialization).
    pub params: Vec<f64>,
    /// Values on the training set.
    pub train_values: Vec<f64>,
    /// Values on the validation set, when one was supplied.
    pub valid_values: Option<Vec<f64>>,
}

/// Canonical generated-feature name.
pub fn feature_name(op: &str, parents: &[&str]) -> String {
    format!("{op}({})", parents.join(","))
}

/// One materialized parent column: borrowed zero-copy when resident,
/// gathered into owned scratch when chunked, or absent (a validation set
/// narrower than train — schema drift — simply has no such column).
enum ParentCol<'a> {
    Borrowed(&'a [f64]),
    Owned(Vec<f64>),
    Missing,
}

impl ParentCol<'_> {
    fn slice(&self) -> Option<&[f64]> {
        match self {
            ParentCol::Borrowed(s) => Some(s),
            ParentCol::Owned(v) => Some(v.as_slice()),
            ParentCol::Missing => None,
        }
    }
}

/// Materialize the parent columns of one combination. `allow_missing` is
/// set for validation views, where an out-of-range feature index means "no
/// column" rather than a stale combination (the caller screens train
/// indices first). A spill-read failure panics — generation workers run
/// under [`safe_stats::par::try_par_map`], which captures it as a
/// [`ParPanic`] for the pipeline to degrade on.
fn gather_parents<'a>(
    views: &'a [ColumnView<'a>],
    feats: &[usize],
    allow_missing: bool,
) -> Vec<ParentCol<'a>> {
    feats
        .iter()
        .map(|&f| match views.get(f) {
            None if allow_missing => ParentCol::Missing,
            None => panic!("parent column {f} out of range during generation"),
            Some(v) => match v.as_slice() {
                Some(s) => ParentCol::Borrowed(s),
                None => {
                    let mut buf = Vec::new();
                    match v.gather_into(&mut buf) {
                        Ok(()) => ParentCol::Owned(buf),
                        Err(e) => panic!("column read failed during generation: {e}"),
                    }
                }
            },
        })
        .collect()
}

/// All orderings of `items` (k ≤ 3 in practice, so the factorial is tiny).
fn permutations(items: &[usize]) -> Vec<Vec<usize>> {
    if items.len() <= 1 {
        return vec![items.to_vec()];
    }
    let mut out = Vec::new();
    for (i, &head) in items.iter().enumerate() {
        let rest: Vec<usize> = items
            .iter()
            .enumerate()
            .filter(|(j, _)| *j != i)
            .map(|(_, &v)| v)
            .collect();
        for mut tail in permutations(&rest) {
            let mut p = vec![head];
            p.append(&mut tail);
            out.push(p);
        }
    }
    out
}

/// Generation telemetry from [`generate_features_observed`].
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct GenerateStats {
    /// Features generated per operator family, in first-seen order.
    pub per_op: Vec<(String, u64)>,
    /// Candidates discarded because the output column was constant or
    /// all-missing on the training set.
    pub degenerate_discarded: u64,
    /// Candidates skipped because the name already existed.
    pub name_collisions: u64,
    /// Candidates skipped because the operator refused to fit (e.g. a
    /// supervised operator without labels).
    pub op_fit_errors: u64,
    /// Combinations skipped for referencing columns outside the dataset.
    pub stale_combinations: u64,
}

impl GenerateStats {
    fn count_op(&mut self, op: &str) {
        match self.per_op.iter_mut().find(|(name, _)| name == op) {
            Some((_, n)) => *n += 1,
            None => self.per_op.push((op.to_string(), 1)),
        }
    }
}

/// Apply every applicable operator to every combination. Features whose
/// names collide with existing columns (or earlier generated ones) are
/// skipped; features that come out constant or all-missing on the training
/// set are discarded immediately (they cannot survive the IV filter anyway
/// and would waste selection work).
pub fn generate_features(
    train: &Dataset,
    valid: Option<&Dataset>,
    combos: &[Combination],
    registry: &OperatorRegistry,
) -> Vec<GeneratedFeature> {
    match generate_features_observed(train, valid, combos, registry, Parallelism::auto()) {
        Ok((out, _)) => out,
        Err(p) => panic!("{p}"),
    }
}

/// What one (combination, operator, ordering) candidate computed in a worker
/// thread, before the serial merge decides its fate.
enum CandidateOutcome {
    FitError,
    Degenerate,
    Feature {
        params: Vec<f64>,
        train_values: Vec<f64>,
        valid_values: Option<Vec<f64>>,
    },
}

struct Candidate {
    name: String,
    op: String,
    parents: Vec<String>,
    outcome: CandidateOutcome,
}

/// Per-combination worker output.
enum ComboWork {
    Stale,
    Candidates(Vec<Candidate>),
}

/// [`generate_features`] with an explicit thread budget, additionally
/// reporting per-operator counts and how many candidates were skipped (and
/// why). Worker panics surface as [`ParPanic`].
///
/// Operator fitting and application run one combination per work item; the
/// results are then merged serially in combination order, so name-collision
/// bookkeeping, per-operator counts and output ordering are bit-identical
/// to the serial path for any thread count.
pub fn generate_features_observed(
    train: &Dataset,
    valid: Option<&Dataset>,
    combos: &[Combination],
    registry: &OperatorRegistry,
    par: Parallelism,
) -> Result<(Vec<GeneratedFeature>, GenerateStats), ParPanic> {
    let mut stats = GenerateStats::default();
    let labels = train.labels();
    let all_train_views: Vec<ColumnView<'_>> = train.column_views().collect();
    let all_valid_views: Option<Vec<ColumnView<'_>>> =
        valid.map(|v| v.column_views().collect());

    // Phase 1 (parallel): fit + apply every candidate of every combination.
    let per_combo: Vec<ComboWork> = safe_stats::par::try_par_map(par, combos.len(), |ci| {
        let combo = &combos[ci];
        // Combinations referencing columns outside this dataset (stale
        // indices) cannot be generated; skip rather than panic.
        if combo.features.iter().any(|&f| f >= all_train_views.len()) {
            return ComboWork::Stale;
        }
        // Materialize this combination's parent columns once per worker:
        // resident parents borrow zero-copy, chunked parents gather into
        // owned scratch. Operators fit/apply on random-access slices.
        let feats = &combo.features;
        let t_parents = gather_parents(&all_train_views, feats, false);
        let v_parents = all_valid_views
            .as_ref()
            .map(|vv| gather_parents(vv, feats, true));
        let pos = |f: usize| feats.iter().position(|&x| x == f).unwrap_or(0);
        let mut candidates = Vec::new();
        for op in registry.by_arity(combo.arity()) {
            let orders = if op.commutative() {
                vec![combo.features.clone()]
            } else {
                permutations(&combo.features)
            };
            for order in orders {
                let parent_names: Vec<&str> = order
                    .iter()
                    .map(|&f| train.meta()[f].name.as_str())
                    .collect();
                let name = feature_name(op.name(), &parent_names);
                let train_cols: Vec<&[f64]> =
                    order.iter().map(|&f| t_parents[pos(f)].slice().unwrap_or(&[])).collect();
                let outcome = match op.fit(&train_cols, labels) {
                    // e.g. supervised op without labels
                    Err(_) => CandidateOutcome::FitError,
                    Ok(fitted) => {
                        let train_values = fitted.apply(&train_cols);
                        if is_degenerate(&train_values) {
                            CandidateOutcome::Degenerate
                        } else {
                            // A validation set narrower than train (schema
                            // drift) simply gets no generated column for
                            // this feature.
                            let valid_values = v_parents.as_ref().and_then(|vp| {
                                let cols: Option<Vec<&[f64]>> =
                                    order.iter().map(|&f| vp[pos(f)].slice()).collect();
                                cols.map(|cols| fitted.apply(&cols))
                            });
                            CandidateOutcome::Feature {
                                params: fitted.params(),
                                train_values,
                                valid_values,
                            }
                        }
                    }
                };
                candidates.push(Candidate {
                    name,
                    op: op.name().to_string(),
                    parents: parent_names.iter().map(|s| s.to_string()).collect(),
                    outcome,
                });
            }
        }
        ComboWork::Candidates(candidates)
    })?;

    // Phase 2 (serial, fixed order): collision bookkeeping and stats, in
    // exactly the order the serial loop would have visited candidates. A
    // collided candidate is counted before its fit result is examined,
    // matching the serial path, which never fits it at all.
    let mut taken: HashSet<String> =
        train.feature_names().iter().map(|s| s.to_string()).collect();
    let mut out = Vec::new();
    for work in per_combo {
        let candidates = match work {
            ComboWork::Stale => {
                stats.stale_combinations += 1;
                continue;
            }
            ComboWork::Candidates(c) => c,
        };
        for cand in candidates {
            if taken.contains(&cand.name) {
                stats.name_collisions += 1;
                continue;
            }
            match cand.outcome {
                CandidateOutcome::FitError => stats.op_fit_errors += 1,
                CandidateOutcome::Degenerate => stats.degenerate_discarded += 1,
                CandidateOutcome::Feature {
                    params,
                    train_values,
                    valid_values,
                } => {
                    taken.insert(cand.name.clone());
                    stats.count_op(&cand.op);
                    out.push(GeneratedFeature {
                        name: cand.name,
                        op: cand.op,
                        parents: cand.parents,
                        params,
                        train_values,
                        valid_values,
                    });
                }
            }
        }
    }
    Ok((out, stats))
}

/// Constant or all-missing columns carry no signal.
fn is_degenerate(values: &[f64]) -> bool {
    let mut first_finite = None;
    for &v in values {
        if v.is_finite() {
            match first_finite {
                None => first_finite = Some(v),
                Some(f) if f != v => return false,
                Some(_) => {}
            }
        }
    }
    true
}

#[cfg(test)]
mod tests {
    use super::*;
    use safe_data::dataset::Dataset;

    fn ds() -> Dataset {
        Dataset::from_columns(
            vec!["a".into(), "b".into()],
            vec![vec![1.0, 2.0, 3.0, 4.0], vec![4.0, 3.0, 2.0, 1.0]],
            Some(vec![0, 0, 1, 1]),
        )
        .unwrap()
    }

    fn pair_combo() -> Combination {
        Combination {
            features: vec![0, 1],
            split_values: vec![vec![2.0], vec![2.0]],
            gain_ratio: 1.0,
        }
    }

    #[test]
    fn arithmetic_pair_generates_expected_features() {
        // add, mul once each; sub, div in both orders → 6 candidates, but
        // add(a,b) is constant (a+b = 5 on this fixture) and is dropped.
        let out = generate_features(&ds(), None, &[pair_combo()], &OperatorRegistry::arithmetic());
        assert_eq!(out.len(), 5, "{:?}", out.iter().map(|g| &g.name).collect::<Vec<_>>());
        let names: Vec<&str> = out.iter().map(|g| g.name.as_str()).collect();
        assert!(names.contains(&"sub(a,b)"));
        assert!(names.contains(&"sub(b,a)"));
        assert!(names.contains(&"div(a,b)"));
        assert!(names.contains(&"div(b,a)"));
        assert!(names.contains(&"mul(a,b)"));
    }

    #[test]
    fn values_are_correct() {
        let out = generate_features(&ds(), None, &[pair_combo()], &OperatorRegistry::arithmetic());
        let sub = out.iter().find(|g| g.name == "sub(a,b)").unwrap();
        assert_eq!(sub.train_values, vec![-3.0, -1.0, 1.0, 3.0]);
        let div = out.iter().find(|g| g.name == "div(b,a)").unwrap();
        assert_eq!(div.train_values, vec![4.0, 1.5, 2.0 / 3.0, 0.25]);
    }

    #[test]
    fn degenerate_outputs_are_dropped() {
        // add(a,b) is constant 5 on this data → must be filtered out.
        let out = generate_features(&ds(), None, &[pair_combo()], &OperatorRegistry::arithmetic());
        assert!(out.iter().all(|g| g.name != "add(a,b)") || {
            let add = out.iter().find(|g| g.name == "add(a,b)").unwrap();
            add.train_values.windows(2).any(|w| w[0] != w[1])
        });
        // Direct check: a + b = 5 everywhere → not in the output.
        assert!(!out.iter().any(|g| g.name == "add(a,b)"));
        // Fixture docstring said 6 in the other test — adjust: with the
        // constant sum dropped it is 5.
        assert_eq!(out.len(), 5);
    }

    #[test]
    fn valid_columns_use_frozen_state() {
        let train = ds();
        let valid = Dataset::from_columns(
            vec!["a".into(), "b".into()],
            vec![vec![10.0], vec![5.0]],
            Some(vec![1]),
        )
        .unwrap();
        let out = generate_features(&train, Some(&valid), &[pair_combo()], &OperatorRegistry::arithmetic());
        let div = out.iter().find(|g| g.name == "div(a,b)").unwrap();
        assert_eq!(div.valid_values.as_ref().unwrap(), &vec![2.0]);
    }

    #[test]
    fn name_collisions_skipped() {
        let mut train = ds();
        train
            .push_column(
                safe_data::dataset::FeatureMeta::original("mul(a,b)"),
                vec![0.0; 4],
            )
            .unwrap();
        let out = generate_features(&train, None, &[pair_combo()], &OperatorRegistry::arithmetic());
        assert!(!out.iter().any(|g| g.name == "mul(a,b)"));
    }

    #[test]
    fn unary_combos_meet_unary_operators() {
        let combo = Combination {
            features: vec![0],
            split_values: vec![vec![2.0]],
            gain_ratio: 0.5,
        };
        let out = generate_features(&ds(), None, &[combo], &OperatorRegistry::standard());
        assert!(out.iter().any(|g| g.name == "square(a)"));
        assert!(out.iter().any(|g| g.name == "log(a)"));
        // No binary ops applied to a unary combo.
        assert!(!out.iter().any(|g| g.op == "add"));
    }

    #[test]
    fn generate_stats_account_for_every_candidate() {
        // add(a,b) is constant on this fixture → one degenerate discard;
        // the five survivors split as add:0, sub:2, mul:1, div:2.
        let (out, stats) = generate_features_observed(
            &ds(),
            None,
            &[pair_combo()],
            &OperatorRegistry::arithmetic(),
            Parallelism::auto(),
        )
        .unwrap();
        assert_eq!(out.len(), 5);
        assert_eq!(stats.degenerate_discarded, 1);
        assert_eq!(stats.name_collisions, 0);
        assert_eq!(stats.per_op.iter().map(|&(_, n)| n).sum::<u64>(), 5);
        assert!(stats.per_op.iter().any(|(op, n)| op == "sub" && *n == 2));
        assert!(stats.per_op.iter().any(|(op, n)| op == "div" && *n == 2));
        // A pre-existing column with a generated name counts as a collision.
        let mut train = ds();
        train
            .push_column(
                safe_data::dataset::FeatureMeta::original("mul(a,b)"),
                vec![0.0; 4],
            )
            .unwrap();
        let (_, stats) = generate_features_observed(
            &train,
            None,
            &[pair_combo()],
            &OperatorRegistry::arithmetic(),
            Parallelism::auto(),
        )
        .unwrap();
        assert_eq!(stats.name_collisions, 1);
    }

    #[test]
    fn permutation_count() {
        assert_eq!(permutations(&[1]).len(), 1);
        assert_eq!(permutations(&[1, 2]).len(), 2);
        assert_eq!(permutations(&[1, 2, 3]).len(), 6);
    }

    #[test]
    fn degenerate_detector() {
        assert!(is_degenerate(&[1.0, 1.0, 1.0]));
        assert!(is_degenerate(&[f64::NAN, f64::NAN]));
        assert!(is_degenerate(&[1.0, f64::NAN, 1.0]));
        assert!(!is_degenerate(&[1.0, 2.0]));
        assert!(is_degenerate(&[]));
    }
}
