//! Typed errors for the SAFE pipeline, with source-chain context.
//!
//! [`SafeError`] is the single error type [`crate::safe::Safe::fit`]
//! returns. It distinguishes *rejections* (bad config, unusable data — the
//! caller must change something) from *internal failures* (a booster or
//! stage failed mid-loop). Internal failures are normally absorbed by the
//! degradation policy (see `DESIGN.md`, "Error handling & degradation
//! policy") and surface as [`crate::safe::IterationStatus::Degraded`]
//! entries instead of an `Err`; the variants here still carry enough
//! context — iteration index, stage name, underlying error — to render a
//! precise message either way.

use std::fmt;

use safe_data::audit::AuditError;
use safe_gbm::error::GbmError;

/// Errors from the SAFE pipeline.
#[derive(Debug)]
pub enum SafeError {
    /// Invalid configuration.
    Config(String),
    /// Unusable input data.
    Data(String),
    /// The pre-fit data audit rejected the dataset (see
    /// [`safe_data::audit`]). Carries the full audit report.
    Audit(AuditError),
    /// An internal booster failed. Only constructed mid-loop; the
    /// degradation policy converts it into an iteration status, so callers
    /// of `fit` observe it only through [`crate::safe::IterationStatus`].
    Gbm {
        /// Iteration (0-based) in which the booster failed.
        iteration: usize,
        /// Pipeline stage, e.g. `"mine"` or `"rank"`.
        stage: &'static str,
        /// The underlying booster error.
        source: GbmError,
    },
    /// An internal model failed to train (legacy string form, kept for
    /// stages without a typed error).
    Train(String),
    /// Checkpoint/resume failure: no usable checkpoint (every candidate
    /// file failed to load), a fingerprint mismatch between the checkpoint
    /// and the resuming configuration, or a missing checkpoint directory.
    /// Unlike mid-loop stage failures this is a *rejection* — the caller
    /// asked to resume and the premise does not hold, so no training runs.
    Checkpoint(String),
    /// A worker thread panicked inside a parallel stage. The execution
    /// layer ([`safe_stats::par`]) joins every worker and captures the
    /// panic, so this is an error — never a hang or an unwind across the
    /// pipeline. Like [`SafeError::Gbm`] it is normally absorbed by the
    /// degradation policy mid-loop.
    WorkerPanic {
        /// Pipeline stage, e.g. `"iv-filter"` or `"generate"`.
        stage: &'static str,
        /// Stringified panic payload from the worker.
        message: String,
    },
}

impl SafeError {
    /// Wrap a captured worker panic with the pipeline stage it poisoned.
    pub fn worker_panic(stage: &'static str, panic: safe_stats::par::ParPanic) -> SafeError {
        SafeError::WorkerPanic {
            stage,
            message: panic.message,
        }
    }

    /// Display plus every [`std::error::Error::source`] in the chain,
    /// joined with `": "` — for contexts that flatten the error into one
    /// line (iteration degradation reasons, logs).
    pub fn chain_string(&self) -> String {
        let mut out = self.to_string();
        let mut src = std::error::Error::source(self);
        while let Some(cause) = src {
            out.push_str(": ");
            out.push_str(&cause.to_string());
            src = cause.source();
        }
        out
    }
}

// Display deliberately does NOT embed the source — callers that want the
// cause walk `source()` (as the CLI's chain renderer does) or use
// [`SafeError::chain_string`], so the cause is never printed twice.
impl fmt::Display for SafeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SafeError::Config(m) => write!(f, "config error: {m}"),
            SafeError::Data(m) => write!(f, "data error: {m}"),
            SafeError::Audit(_) => write!(f, "the pre-fit data audit rejected the dataset"),
            SafeError::Gbm { iteration, stage, .. } => {
                write!(f, "booster failed at iteration {iteration}, stage '{stage}'")
            }
            SafeError::Train(m) => write!(f, "training error: {m}"),
            SafeError::Checkpoint(m) => write!(f, "checkpoint error: {m}"),
            SafeError::WorkerPanic { stage, message } => {
                write!(f, "worker thread panicked in stage '{stage}': {message}")
            }
        }
    }
}

impl std::error::Error for SafeError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            SafeError::Audit(e) => Some(e),
            SafeError::Gbm { source, .. } => Some(source),
            _ => None,
        }
    }
}

impl From<AuditError> for SafeError {
    fn from(e: AuditError) -> Self {
        SafeError::Audit(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::error::Error;

    #[test]
    fn gbm_variant_chains_its_source() {
        let e = SafeError::Gbm {
            iteration: 2,
            stage: "mine",
            source: GbmError::EmptyTraining,
        };
        let msg = e.to_string();
        assert!(msg.contains("iteration 2"), "{msg}");
        assert!(msg.contains("mine"), "{msg}");
        assert!(e.source().is_some());
        // The flattened form appends the cause exactly once.
        let chain = e.chain_string();
        assert!(chain.contains(&GbmError::EmptyTraining.to_string()), "{chain}");
        assert!(!msg.contains(&GbmError::EmptyTraining.to_string()), "{msg}");
    }

    #[test]
    fn string_variants_have_no_source() {
        assert!(SafeError::Config("x".into()).source().is_none());
        assert!(SafeError::Data("x".into()).source().is_none());
    }

    #[test]
    fn worker_panic_carries_stage_and_payload() {
        let p = safe_stats::par::ParPanic { message: "poisoned column 3".into() };
        let e = SafeError::worker_panic("iv-filter", p);
        let msg = e.to_string();
        assert!(msg.contains("iv-filter"), "{msg}");
        assert!(msg.contains("poisoned column 3"), "{msg}");
        assert!(e.source().is_none(), "payload is embedded, not chained");
    }
}
