//! Combination mining (Section IV-B1) and gain-ratio ranking (Algorithm 2).

use std::collections::BTreeMap;

use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;

use safe_data::binning::BinEdges;
use safe_data::column::{ColumnRead, ColumnView};
use safe_data::dataset::Dataset;
use safe_gbm::booster::GbmModel;
use safe_stats::entropy::{gain_ratio, joint_cells};
use safe_stats::par::{ParPanic, Parallelism};

/// A candidate feature combination: the distinct split features of (a subset
/// of) one tree path, with the split values observed for each.
#[derive(Debug, Clone, PartialEq)]
pub struct Combination {
    /// Feature column indices, sorted ascending (canonical form).
    pub features: Vec<usize>,
    /// Split values per feature (aligned with `features`).
    pub split_values: Vec<Vec<f64>>,
    /// Information gain ratio, filled by [`rank_combinations`].
    pub gain_ratio: f64,
}

impl Combination {
    /// Arity of the combination.
    pub fn arity(&self) -> usize {
        self.features.len()
    }
}

/// Enumerate all combinations of size `1..=max_arity` from the model's tree
/// paths. Implements the search space S* of Eq. (4): every subset of the
/// distinct split features on one path is a candidate, because the paper's
/// assumption 2 favours same-path feature sets. Identical feature sets from
/// different paths are merged, with their split-value sets unioned.
pub fn mine_combinations(model: &GbmModel, max_arity: usize) -> Vec<Combination> {
    let mut merged: BTreeMap<Vec<usize>, BTreeMap<usize, Vec<f64>>> = BTreeMap::new();
    for path in model.paths() {
        let mut feats: Vec<usize> = path.features.clone();
        feats.sort_unstable();
        let k = feats.len().min(max_arity);
        for size in 1..=k {
            for subset in subsets_of(&feats, size) {
                let entry = merged.entry(subset.clone()).or_default();
                for &f in &subset {
                    let vals = entry.entry(f).or_default();
                    for &v in &path.split_values[&f] {
                        if !vals.contains(&v) {
                            vals.push(v);
                        }
                    }
                }
            }
        }
    }
    merged
        .into_iter()
        .map(|(features, values)| {
            let split_values = features.iter().map(|f| values[f].clone()).collect();
            Combination {
                features,
                split_values,
                gain_ratio: 0.0,
            }
        })
        .collect()
}

/// All `size`-subsets of a sorted, deduplicated slice.
fn subsets_of(items: &[usize], size: usize) -> Vec<Vec<usize>> {
    let mut out = Vec::new();
    let mut current = Vec::with_capacity(size);
    fn rec(items: &[usize], size: usize, start: usize, current: &mut Vec<usize>, out: &mut Vec<Vec<usize>>) {
        if current.len() == size {
            out.push(current.clone());
            return;
        }
        for i in start..items.len() {
            current.push(items[i]);
            rec(items, size, i + 1, current, out);
            current.pop();
        }
    }
    rec(items, size, 0, &mut current, &mut out);
    out
}

/// Scoring telemetry from [`rank_combinations_observed`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct RankStats {
    /// Combinations that entered the ranking.
    pub candidates_in: u64,
    /// Total joint-partition cells evaluated across all combinations.
    pub cells_evaluated: u64,
    /// Combinations cut by the γ truncation.
    pub gamma_truncated: u64,
}

/// Algorithm 2: score each combination by the information gain ratio of the
/// partition its split values induce, and keep the top γ.
pub fn rank_combinations(
    combos: Vec<Combination>,
    train: &Dataset,
    gamma: usize,
) -> Vec<Combination> {
    match rank_combinations_observed(combos, train, gamma, Parallelism::auto()) {
        Ok((combos, _)) => combos,
        Err(p) => panic!("{p}"),
    }
}

/// [`rank_combinations`] with an explicit thread budget, additionally
/// reporting scoring telemetry. Worker panics surface as [`ParPanic`].
///
/// A combination of q features with value sets `V_1..V_q` splits the records
/// into `∏ (|V_i| + 1)` cells; the gain ratio of that partition against the
/// label is the combination's score.
pub fn rank_combinations_observed(
    mut combos: Vec<Combination>,
    train: &Dataset,
    gamma: usize,
    par: Parallelism,
) -> Result<(Vec<Combination>, RankStats), ParPanic> {
    let mut stats = RankStats {
        candidates_in: combos.len() as u64,
        ..RankStats::default()
    };
    let Some(labels) = train.labels() else {
        // No labels: gain ratios are undefined. Keep a deterministic order
        // and the γ cap so callers still get a usable (unscored) list.
        combos.sort_by(|a, b| a.features.cmp(&b.features));
        combos.truncate(gamma);
        stats.gamma_truncated = stats.candidates_in - combos.len() as u64;
        return Ok((combos, stats));
    };
    let views: Vec<ColumnView<'_>> = train.column_views().collect();
    // Score combinations in parallel (each builds its own small binnings).
    let scores = safe_stats::par::try_par_map(par, combos.len(), |i| {
        let combo = &combos[i];
        // Stale feature indices (not from this dataset) score zero.
        if combo.features.iter().any(|&f| f >= views.len()) {
            return (0.0, 0u64);
        }
        // Bin assignment walks the whole column: materialize it per worker
        // (zero-copy when resident, scratch gather when chunked). Spill
        // failures panic and surface as [`ParPanic`].
        let mut scratch = Vec::new();
        let assignments: Vec<(Vec<usize>, usize)> = combo
            .features
            .iter()
            .zip(&combo.split_values)
            .map(|(&f, values)| {
                let edges = BinEdges::from_cuts(values.clone());
                let col = match views[f].materialize(&mut scratch) {
                    Ok(c) => c,
                    Err(e) => panic!("column read failed during combination ranking: {e}"),
                };
                let a = edges.assign_with_missing(col);
                (a.bins, a.n_bins)
            })
            .collect();
        let refs: Vec<(&[usize], usize)> = assignments
            .iter()
            .map(|(bins, n)| (bins.as_slice(), *n))
            .collect();
        let (cells, n_cells) = joint_cells(&refs);
        (gain_ratio(&cells, labels, n_cells), n_cells as u64)
    })?;
    for (combo, (score, n_cells)) in combos.iter_mut().zip(scores) {
        combo.gain_ratio = score;
        stats.cells_evaluated += n_cells;
    }
    combos.sort_by(|a, b| {
        b.gain_ratio
            .partial_cmp(&a.gain_ratio)
            .unwrap_or(std::cmp::Ordering::Equal)
            .then_with(|| a.features.cmp(&b.features))
    });
    combos.truncate(gamma);
    stats.gamma_truncated = stats.candidates_in - combos.len() as u64;
    Ok((combos, stats))
}

/// The RAND/IMP generators (Section V-A1): γ random combinations over the
/// given feature pool, sizes drawn uniformly from `1..=max_arity` (capped by
/// the pool size). Split values are empty — random combinations carry no
/// path information, so downstream scoring bins the raw columns instead.
/// An empty pool yields no combinations.
pub fn random_combinations(
    pool: &[usize],
    gamma: usize,
    max_arity: usize,
    seed: u64,
) -> Vec<Combination> {
    if pool.is_empty() {
        return Vec::new();
    }
    let mut rng = StdRng::seed_from_u64(seed);
    let max_arity = max_arity.min(pool.len());
    let mut seen = std::collections::BTreeSet::new();
    let mut out = Vec::with_capacity(gamma);
    // Upper bound on attempts so a tiny pool cannot loop forever.
    let mut attempts = 0usize;
    let max_attempts = gamma * 50;
    while out.len() < gamma && attempts < max_attempts {
        attempts += 1;
        let size = 1 + (attempts + out.len()) % max_arity; // cycle sizes deterministically
        let mut picks: Vec<usize> = pool.to_vec();
        picks.shuffle(&mut rng);
        picks.truncate(size);
        picks.sort_unstable();
        if seen.insert(picks.clone()) {
            let split_values = vec![Vec::new(); picks.len()];
            out.push(Combination {
                features: picks,
                split_values,
                gain_ratio: 0.0,
            });
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use safe_gbm::booster::Gbm;
    use safe_gbm::config::GbmConfig;

    fn xor_like_dataset(n: usize) -> Dataset {
        // Label = (a > 0) xor (b > 0) with slight imbalance to keep the
        // booster splitting; c is noise.
        let mut cols = vec![Vec::new(); 3];
        let mut labels = Vec::new();
        for i in 0..n {
            let a = ((i * 7919 + 13) % 1000) as f64 / 500.0 - 1.0;
            let b = ((i * 104729 + 7) % 1000) as f64 / 500.0 - 1.0;
            let c = ((i * 31) % 100) as f64;
            cols[0].push(a);
            cols[1].push(b);
            cols[2].push(c);
            labels.push((((a > 0.05) as u8) ^ ((b > 0.0) as u8)) as u8);
        }
        Dataset::from_columns(
            vec!["a".into(), "b".into(), "c".into()],
            cols,
            Some(labels),
        )
        .unwrap()
    }

    #[test]
    fn mining_yields_sorted_deduped_combinations() {
        let ds = xor_like_dataset(600);
        let model = Gbm::new(GbmConfig::miner()).fit(&ds, None).unwrap();
        let combos = mine_combinations(&model, 2);
        assert!(!combos.is_empty());
        let mut seen = std::collections::BTreeSet::new();
        for c in &combos {
            assert!(c.features.windows(2).all(|w| w[0] < w[1]), "sorted, unique");
            assert!(seen.insert(c.features.clone()), "no duplicate feature sets");
            assert!(c.arity() <= 2);
            for (f, vals) in c.features.iter().zip(&c.split_values) {
                assert!(*f < ds.n_cols());
                assert!(!vals.is_empty(), "mined combos carry split values");
            }
        }
    }

    #[test]
    fn xor_pair_ranks_first() {
        let ds = xor_like_dataset(800);
        let model = Gbm::new(GbmConfig::miner()).fit(&ds, None).unwrap();
        let combos = mine_combinations(&model, 2);
        let ranked = rank_combinations(combos, &ds, 5);
        assert!(!ranked.is_empty());
        // The top combination must be the {a, b} pair — only jointly do the
        // two features explain an XOR label.
        assert_eq!(ranked[0].features, vec![0, 1], "top combo = the XOR pair");
        assert!(ranked[0].gain_ratio > 0.2, "gain ratio {}", ranked[0].gain_ratio);
        // Scores are sorted descending.
        for w in ranked.windows(2) {
            assert!(w[0].gain_ratio >= w[1].gain_ratio);
        }
    }

    #[test]
    fn gamma_truncates() {
        let ds = xor_like_dataset(400);
        let model = Gbm::new(GbmConfig::miner()).fit(&ds, None).unwrap();
        let combos = mine_combinations(&model, 2);
        let total = combos.len();
        let ranked = rank_combinations(combos, &ds, 2);
        assert!(ranked.len() <= 2);
        assert!(total >= ranked.len());
    }

    #[test]
    fn rank_stats_count_candidates_and_cells() {
        let ds = xor_like_dataset(400);
        let model = Gbm::new(GbmConfig::miner()).fit(&ds, None).unwrap();
        let combos = mine_combinations(&model, 2);
        let total = combos.len() as u64;
        let (ranked, stats) =
            rank_combinations_observed(combos, &ds, 3, Parallelism::auto()).unwrap();
        assert_eq!(stats.candidates_in, total);
        assert_eq!(stats.gamma_truncated, total - ranked.len() as u64);
        // Every combination induces at least 2 cells (one cut ⇒ two sides).
        assert!(stats.cells_evaluated >= 2 * total, "{stats:?}");
    }

    #[test]
    fn subsets_enumeration() {
        let items = vec![1, 4, 9];
        assert_eq!(subsets_of(&items, 1).len(), 3);
        assert_eq!(subsets_of(&items, 2).len(), 3);
        assert_eq!(subsets_of(&items, 3).len(), 1);
        assert_eq!(subsets_of(&items, 2), vec![vec![1, 4], vec![1, 9], vec![4, 9]]);
    }

    #[test]
    fn random_combinations_are_unique_and_in_pool() {
        let pool = vec![0, 3, 5, 8, 11];
        let combos = random_combinations(&pool, 10, 2, 42);
        let mut seen = std::collections::BTreeSet::new();
        for c in &combos {
            assert!(seen.insert(c.features.clone()));
            assert!(c.features.iter().all(|f| pool.contains(f)));
            assert!(c.arity() >= 1 && c.arity() <= 2);
        }
        assert_eq!(combos.len(), 10);
    }

    #[test]
    fn random_combinations_deterministic_by_seed() {
        let pool: Vec<usize> = (0..20).collect();
        let a = random_combinations(&pool, 8, 2, 7);
        let b = random_combinations(&pool, 8, 2, 7);
        let c = random_combinations(&pool, 8, 2, 8);
        assert_eq!(a, b);
        assert_ne!(a, c);
    }

    #[test]
    fn tiny_pool_terminates() {
        let pool = vec![0];
        let combos = random_combinations(&pool, 100, 3, 1);
        assert_eq!(combos.len(), 1, "only one distinct combo exists");
    }
}
