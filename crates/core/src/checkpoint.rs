//! Durable training checkpoints: the `SAFECKPT 1` codec and the atomic
//! on-disk store (see `DESIGN.md` §13, "Crash safety & resume").
//!
//! After every completed iteration the fit loop can snapshot everything a
//! future process needs to continue the run bit-identically:
//!
//! - the iteration history ([`crate::safe::IterationReport`]s),
//! - the per-iteration [`FeaturePlan`] snapshots (the last one is the
//!   "last-good plan" resume rebuilds the working feature set from),
//! - the seed position (the per-iteration RNG seed is a pure function of
//!   `config.seed` and the iteration index, so the index *is* the RNG
//!   position),
//! - cache provenance ([`BinCache`] keys and [`StatsCache`] entry counts —
//!   metadata only; cached values are rebuilt bit-identically from data),
//! - the [`RunReport`] accumulated so far.
//!
//! ## Durability protocol
//!
//! [`CheckpointStore::save`] writes a temp file, fsyncs it, then renames it
//! into place — a crash at any point leaves either the previous complete
//! checkpoint set or a stray `.tmp` the loader ignores. On load,
//! [`CheckpointStore::load_latest`] walks checkpoints newest-first; a file
//! that fails the FNV-1a/64 checksum (or any parse step) is *quarantined*
//! (renamed to `<file>.corrupt`) and the loader falls back to the previous
//! good checkpoint. Only when checkpoint files exist but none loads does
//! resume become an error.
//!
//! The codec reuses the workspace's durable-text idioms from the
//! `SAFEARTIFACT` serving bundle: a version header, a `CHECKSUM` line
//! ([`safe_data::checksum::fnv1a64`] over the body), tab-separated records,
//! floats as 16-hex-digit IEEE-754 bit patterns. Unlike the artifact, no
//! `SAFEGBM` booster section is embedded: the miner/ranker boosters are
//! per-iteration ephemera, retrained from scratch each iteration, so a
//! resumed run rebuilds them bit-identically from the data.

use std::fmt;
use std::fmt::Write as _;
use std::fs;
use std::io::Write as _;
use std::path::{Path, PathBuf};

use safe_data::checksum::fnv1a64;
use safe_obs::RunReport;

use crate::config::{GenerationStrategy, SafeConfig, SelectionMode};
use crate::plan::FeaturePlan;
use crate::safe::{IterationReport, IterationStatus};

/// Why the checkpointed run stopped (or didn't).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Terminal {
    /// More iterations remain; resume continues the loop.
    Running,
    /// The selected set stopped changing; the run is finished.
    Converged,
    /// A stage failure degraded the run; the loop stopped.
    Degraded,
    /// The time budget expired before the last iteration ran.
    Skipped,
    /// The configured `n_iterations` budget is exhausted.
    ItersExhausted,
}

impl Terminal {
    fn as_str(self) -> &'static str {
        match self {
            Terminal::Running => "running",
            Terminal::Converged => "converged",
            Terminal::Degraded => "degraded",
            Terminal::Skipped => "skipped",
            Terminal::ItersExhausted => "iters-exhausted",
        }
    }

    fn parse(s: &str) -> Option<Terminal> {
        match s {
            "running" => Some(Terminal::Running),
            "converged" => Some(Terminal::Converged),
            "degraded" => Some(Terminal::Degraded),
            "skipped" => Some(Terminal::Skipped),
            "iters-exhausted" => Some(Terminal::ItersExhausted),
            _ => None,
        }
    }

    /// Whether the checkpointed run is finished (resume reconstructs the
    /// outcome without running further iterations).
    pub fn is_final(self) -> bool {
        !matches!(self, Terminal::Running)
    }
}

/// The configuration values that determine a run's results. A checkpoint
/// may only be resumed under a config with the same fingerprint — anything
/// here differing would change what the remaining iterations compute.
#[derive(Debug, Clone)]
pub struct ConfigFingerprint {
    /// Base seed (per-iteration seeds derive from it).
    pub seed: u64,
    /// γ — combinations kept per iteration.
    pub gamma: usize,
    /// α — IV threshold.
    pub alpha: f64,
    /// β — IV bin count.
    pub beta: usize,
    /// θ — Pearson redundancy threshold.
    pub theta: f64,
    /// Output cap multiplier.
    pub output_multiplier: usize,
    /// Iteration budget.
    pub n_iterations: usize,
    /// Generation strategy.
    pub strategy: GenerationStrategy,
    /// Selection mode (exact vs staged successive halving). Result-
    /// determining: the modes keep different feature sets.
    pub selection: SelectionMode,
    /// Whether the cross-iteration caches were on (results are identical
    /// either way; recorded for provenance, not compared).
    pub cache: bool,
}

impl ConfigFingerprint {
    /// Extract the fingerprint of a configuration.
    pub fn of(config: &SafeConfig) -> ConfigFingerprint {
        ConfigFingerprint {
            seed: config.seed,
            gamma: config.gamma,
            alpha: config.alpha,
            beta: config.beta,
            theta: config.theta,
            output_multiplier: config.output_multiplier,
            n_iterations: config.n_iterations,
            strategy: config.strategy,
            selection: config.selection,
            cache: config.cache,
        }
    }

    /// Bit-exact equality over the result-determining fields (`cache` is
    /// excluded: cached and cold runs are bit-identical by construction).
    pub fn matches(&self, other: &ConfigFingerprint) -> bool {
        self.seed == other.seed
            && self.gamma == other.gamma
            && self.alpha.to_bits() == other.alpha.to_bits()
            && self.beta == other.beta
            && self.theta.to_bits() == other.theta.to_bits()
            && self.output_multiplier == other.output_multiplier
            && self.n_iterations == other.n_iterations
            && self.strategy == other.strategy
            && self.selection == other.selection
    }
}

fn strategy_str(s: GenerationStrategy) -> &'static str {
    match s {
        GenerationStrategy::Mined => "mined",
        GenerationStrategy::RandomSplitFeatures => "random-split",
        GenerationStrategy::RandomAllFeatures => "random-all",
    }
}

fn strategy_parse(s: &str) -> Option<GenerationStrategy> {
    match s {
        "mined" => Some(GenerationStrategy::Mined),
        "random-split" => Some(GenerationStrategy::RandomSplitFeatures),
        "random-all" => Some(GenerationStrategy::RandomAllFeatures),
        _ => None,
    }
}

fn selection_str(s: SelectionMode) -> &'static str {
    match s {
        SelectionMode::Exact => "exact",
        SelectionMode::Staged => "staged",
    }
}

fn selection_parse(s: &str) -> Option<SelectionMode> {
    match s {
        "exact" => Some(SelectionMode::Exact),
        "staged" => Some(SelectionMode::Staged),
        _ => None,
    }
}

/// One durable snapshot of an in-progress (or finished) fit.
#[derive(Debug, Clone)]
pub struct Checkpoint {
    /// Fingerprint of the configuration that produced this snapshot.
    pub fingerprint: ConfigFingerprint,
    /// Iterations recorded so far (`== history.len()`); resume continues
    /// the loop at this index.
    pub iterations_done: usize,
    /// How the run stood when the snapshot was taken.
    pub terminal: Terminal,
    /// Wall-clock spent in the run so far, in integer microseconds (resume
    /// charges this against the time budget).
    pub elapsed_us: u64,
    /// Full iteration history so far.
    pub history: Vec<IterationReport>,
    /// Plan snapshot after each iteration; the last is the last-good plan.
    pub plans: Vec<FeaturePlan>,
    /// The telemetry report accumulated so far.
    pub report: RunReport,
    /// `(column name, max_bins)` keys the bin cache held (provenance).
    pub bin_keys: Vec<(String, usize)>,
    /// Number of cached IV values (provenance).
    pub iv_entries: usize,
    /// Number of cached Pearson pairs (provenance).
    pub pearson_entries: usize,
}

/// Errors from checkpoint serialization, parsing, or storage.
#[derive(Debug)]
pub enum CkptError {
    /// Filesystem failure (write, fsync, rename, read).
    Io(std::io::Error),
    /// The checksum line does not match the body — torn or corrupted file.
    Checksum {
        /// Checksum the header claims.
        expected: u64,
        /// Checksum of the body as read.
        actual: u64,
    },
    /// The body failed to parse.
    Parse {
        /// 1-based line number in the file.
        line: usize,
        /// Description.
        message: String,
    },
}

impl fmt::Display for CkptError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CkptError::Io(e) => write!(f, "checkpoint i/o error: {e}"),
            CkptError::Checksum { expected, actual } => write!(
                f,
                "checkpoint checksum mismatch: header says {expected:016x}, body hashes to {actual:016x}"
            ),
            CkptError::Parse { line, message } => {
                write!(f, "checkpoint parse error, line {line}: {message}")
            }
        }
    }
}

impl std::error::Error for CkptError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            CkptError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<std::io::Error> for CkptError {
    fn from(e: std::io::Error) -> Self {
        CkptError::Io(e)
    }
}

/// Escape a free-form string (degradation reasons) for a tab-separated
/// record: `\` `\t` `\n` `\r` become two-character escapes.
fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '\\' => out.push_str("\\\\"),
            '\t' => out.push_str("\\t"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            c => out.push(c),
        }
    }
    out
}

fn unescape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    let mut chars = s.chars();
    while let Some(c) = chars.next() {
        if c == '\\' {
            match chars.next() {
                Some('t') => out.push('\t'),
                Some('n') => out.push('\n'),
                Some('r') => out.push('\r'),
                Some('\\') => out.push('\\'),
                Some(other) => {
                    out.push('\\');
                    out.push(other);
                }
                None => out.push('\\'),
            }
        } else {
            out.push(c);
        }
    }
    out
}

/// Degraded stages are a closed vocabulary; parsing maps back to the
/// `&'static str` the loop uses so resumed and fresh histories compare `==`.
fn stage_static(s: &str) -> Option<&'static str> {
    ["mine", "generate", "staged-prune", "iv-filter", "redundancy", "rank", "select"]
        .into_iter()
        .find(|known| s == *known)
}

impl Checkpoint {
    /// Serialize to the versioned `SAFECKPT 1` text codec: a header line, a
    /// `CHECKSUM` line (FNV-1a/64 of everything after it), then the body.
    pub fn to_text(&self) -> String {
        let body = self.body();
        format!(
            "SAFECKPT\t1\nCHECKSUM\t{:016x}\n{}",
            fnv1a64(body.as_bytes()),
            body
        )
    }

    fn body(&self) -> String {
        let mut out = String::with_capacity(4096);
        let f = &self.fingerprint;
        let _ = writeln!(out, "CONFIG\tseed\t{}", f.seed);
        let _ = writeln!(out, "CONFIG\tgamma\t{}", f.gamma);
        let _ = writeln!(out, "CONFIG\talpha\t{:016x}", f.alpha.to_bits());
        let _ = writeln!(out, "CONFIG\tbeta\t{}", f.beta);
        let _ = writeln!(out, "CONFIG\ttheta\t{:016x}", f.theta.to_bits());
        let _ = writeln!(out, "CONFIG\tmultiplier\t{}", f.output_multiplier);
        let _ = writeln!(out, "CONFIG\tn_iterations\t{}", f.n_iterations);
        let _ = writeln!(out, "CONFIG\tstrategy\t{}", strategy_str(f.strategy));
        let _ = writeln!(out, "CONFIG\tselection\t{}", selection_str(f.selection));
        let _ = writeln!(out, "CONFIG\tcache\t{}", u8::from(f.cache));
        let _ = writeln!(out, "STATE\titerations_done\t{}", self.iterations_done);
        let _ = writeln!(out, "STATE\tterminal\t{}", self.terminal.as_str());
        let _ = writeln!(out, "STATE\telapsed_us\t{}", self.elapsed_us);
        for (r, plan) in self.history.iter().zip(&self.plans) {
            let _ = writeln!(
                out,
                "ITER\t{}\t{}\t{}\t{}\t{}\t{}\t{}\t{}\t{}",
                r.iteration,
                r.n_combinations,
                r.n_combinations_kept,
                r.n_generated,
                r.n_candidates,
                r.n_after_iv,
                r.n_after_redundancy,
                r.n_selected,
                r.elapsed_us,
            );
            match &r.status {
                IterationStatus::Completed => {
                    let _ = writeln!(out, "STATUS\t{}\tcompleted", r.iteration);
                }
                IterationStatus::Degraded { stage, reason } => {
                    let _ = writeln!(
                        out,
                        "STATUS\t{}\tdegraded\t{}\t{}",
                        r.iteration,
                        stage,
                        escape(reason)
                    );
                }
                IterationStatus::Skipped { reason } => {
                    let _ =
                        writeln!(out, "STATUS\t{}\tskipped\t{}", r.iteration, escape(reason));
                }
            }
            let _ = write!(out, "SELECTED\t{}\t{}", r.iteration, r.selected.len());
            for name in &r.selected {
                // Plan names are codec-safe (no tabs/newlines) by
                // `FeaturePlan::validate`; selected names come from plans.
                out.push('\t');
                out.push_str(name);
            }
            out.push('\n');
            let _ = writeln!(out, "PLAN_BEGIN\t{}", r.iteration);
            out.push_str(&plan.to_text());
            out.push_str("PLAN_END\n");
        }
        let _ = writeln!(out, "CACHE\tiv\t{}", self.iv_entries);
        let _ = writeln!(out, "CACHE\tpearson\t{}", self.pearson_entries);
        for (name, max_bins) in &self.bin_keys {
            let _ = writeln!(out, "BINKEY\t{max_bins}\t{name}");
        }
        out.push_str("REPORT_BEGIN\n");
        out.push_str(&self.report.to_json());
        out.push_str("REPORT_END\n");
        out
    }

    /// Parse the text codec. The checksum is verified before any record is
    /// interpreted, so a torn or bit-flipped file fails closed with
    /// [`CkptError::Checksum`].
    pub fn from_text(text: &str) -> Result<Checkpoint, CkptError> {
        let mut parts = text.splitn(3, '\n');
        let header = parts.next().unwrap_or("");
        if header != "SAFECKPT\t1" {
            return Err(CkptError::Parse {
                line: 1,
                message: "bad header (expected SAFECKPT v1)".into(),
            });
        }
        let checksum_line = parts.next().ok_or(CkptError::Parse {
            line: 2,
            message: "missing CHECKSUM line".into(),
        })?;
        let expected = checksum_line
            .strip_prefix("CHECKSUM\t")
            .and_then(|h| u64::from_str_radix(h, 16).ok())
            .ok_or(CkptError::Parse {
                line: 2,
                message: "bad CHECKSUM line".into(),
            })?;
        let body = parts.next().unwrap_or("");
        let actual = fnv1a64(body.as_bytes());
        if actual != expected {
            return Err(CkptError::Checksum { expected, actual });
        }
        Self::parse_body(body)
    }

    fn parse_body(body: &str) -> Result<Checkpoint, CkptError> {
        // Line numbers are offset by the 2 header lines for error messages.
        let err = |line: usize, message: String| CkptError::Parse { line: line + 3, message };

        let mut fingerprint: Option<ConfigFingerprint> = None;
        let mut cfg: Vec<(String, String)> = Vec::new();
        let mut iterations_done: Option<usize> = None;
        let mut terminal: Option<Terminal> = None;
        let mut elapsed_us: Option<u64> = None;
        let mut history: Vec<IterationReport> = Vec::new();
        let mut plans: Vec<FeaturePlan> = Vec::new();
        let mut have_status: Vec<bool> = Vec::new();
        let mut have_selected: Vec<bool> = Vec::new();
        let mut report: Option<RunReport> = None;
        let mut bin_keys: Vec<(String, usize)> = Vec::new();
        let mut iv_entries = 0usize;
        let mut pearson_entries = 0usize;

        // Section accumulation for the PLAN / REPORT blocks.
        let mut section: Option<(&str, usize, String)> = None;

        for (i, line) in body.lines().enumerate() {
            if let Some((kind, start, acc)) = section.as_mut() {
                match (*kind, line) {
                    ("plan", "PLAN_END") => {
                        let plan = FeaturePlan::from_text(acc)
                            .map_err(|e| err(*start, format!("embedded plan: {e}")))?;
                        plans.push(plan);
                        section = None;
                    }
                    ("report", "REPORT_END") => {
                        report = Some(
                            RunReport::from_json(acc)
                                .map_err(|e| err(*start, format!("embedded report: {e}")))?,
                        );
                        section = None;
                    }
                    _ => {
                        acc.push_str(line);
                        acc.push('\n');
                    }
                }
                continue;
            }
            if line.is_empty() {
                continue;
            }
            let fields: Vec<&str> = line.split('\t').collect();
            match fields[0] {
                "CONFIG" if fields.len() == 3 => {
                    cfg.push((fields[1].to_string(), fields[2].to_string()));
                }
                "STATE" if fields.len() == 3 => match fields[1] {
                    "iterations_done" => {
                        iterations_done =
                            Some(fields[2].parse().map_err(|_| {
                                err(i, "bad iterations_done".into())
                            })?);
                    }
                    "terminal" => {
                        terminal = Some(Terminal::parse(fields[2]).ok_or_else(|| {
                            err(i, format!("unknown terminal '{}'", fields[2]))
                        })?);
                    }
                    "elapsed_us" => {
                        elapsed_us = Some(
                            fields[2].parse().map_err(|_| err(i, "bad elapsed_us".into()))?,
                        );
                    }
                    other => return Err(err(i, format!("unknown STATE key '{other}'"))),
                },
                "ITER" if fields.len() == 10 => {
                    let nums: Vec<u64> = fields[1..]
                        .iter()
                        .map(|s| s.parse::<u64>())
                        .collect::<Result<_, _>>()
                        .map_err(|_| err(i, "bad ITER counts".into()))?;
                    if nums[0] as usize != history.len() {
                        return Err(err(i, format!("ITER index {} out of order", nums[0])));
                    }
                    history.push(IterationReport {
                        iteration: nums[0] as usize,
                        n_combinations: nums[1] as usize,
                        n_combinations_kept: nums[2] as usize,
                        n_generated: nums[3] as usize,
                        n_candidates: nums[4] as usize,
                        n_after_iv: nums[5] as usize,
                        n_after_redundancy: nums[6] as usize,
                        n_selected: nums[7] as usize,
                        selected: Vec::new(),
                        elapsed_us: nums[8],
                        status: IterationStatus::Completed, // placeholder until STATUS
                    });
                    have_status.push(false);
                    have_selected.push(false);
                }
                "STATUS" if fields.len() >= 3 => {
                    let idx: usize =
                        fields[1].parse().map_err(|_| err(i, "bad STATUS index".into()))?;
                    let (r, seen) = history
                        .get_mut(idx)
                        .zip(have_status.get_mut(idx))
                        .ok_or_else(|| err(i, format!("STATUS for unknown iteration {idx}")))?;
                    r.status = match (fields[2], fields.len()) {
                        ("completed", 3) => IterationStatus::Completed,
                        ("degraded", 5) => IterationStatus::Degraded {
                            stage: stage_static(fields[3]).ok_or_else(|| {
                                err(i, format!("unknown degraded stage '{}'", fields[3]))
                            })?,
                            reason: unescape(fields[4]),
                        },
                        ("skipped", 4) => IterationStatus::Skipped {
                            reason: unescape(fields[3]),
                        },
                        _ => return Err(err(i, "malformed STATUS record".into())),
                    };
                    *seen = true;
                }
                "SELECTED" if fields.len() >= 3 => {
                    let idx: usize =
                        fields[1].parse().map_err(|_| err(i, "bad SELECTED index".into()))?;
                    let n: usize =
                        fields[2].parse().map_err(|_| err(i, "bad SELECTED count".into()))?;
                    if fields.len() != 3 + n {
                        return Err(err(i, "SELECTED count mismatch".into()));
                    }
                    let (r, seen) = history
                        .get_mut(idx)
                        .zip(have_selected.get_mut(idx))
                        .ok_or_else(|| err(i, format!("SELECTED for unknown iteration {idx}")))?;
                    r.selected = fields[3..].iter().map(|s| s.to_string()).collect();
                    *seen = true;
                }
                "PLAN_BEGIN" if fields.len() == 2 => {
                    section = Some(("plan", i, String::new()));
                }
                "CACHE" if fields.len() == 3 => {
                    let n: usize =
                        fields[2].parse().map_err(|_| err(i, "bad CACHE count".into()))?;
                    match fields[1] {
                        "iv" => iv_entries = n,
                        "pearson" => pearson_entries = n,
                        other => return Err(err(i, format!("unknown CACHE kind '{other}'"))),
                    }
                }
                "BINKEY" if fields.len() == 3 => {
                    let max_bins: usize =
                        fields[1].parse().map_err(|_| err(i, "bad BINKEY bins".into()))?;
                    bin_keys.push((fields[2].to_string(), max_bins));
                }
                "REPORT_BEGIN" => {
                    section = Some(("report", i, String::new()));
                }
                other => return Err(err(i, format!("unrecognized record '{other}'"))),
            }
            // Assemble the fingerprint once all CONFIG records are in; the
            // writer emits exactly ten, in a fixed order, but lookup by key
            // keeps the format order-insensitive.
            if fields[0] == "CONFIG" && cfg.len() == 10 && fingerprint.is_none() {
                fingerprint = Some(parse_fingerprint(&cfg).map_err(|m| err(i, m))?);
            }
        }
        if let Some((_, start, _)) = section {
            return Err(err(start, "unterminated section".into()));
        }
        let fingerprint =
            fingerprint.ok_or_else(|| err(0, "incomplete CONFIG records".into()))?;
        let iterations_done =
            iterations_done.ok_or_else(|| err(0, "missing STATE iterations_done".into()))?;
        let terminal = terminal.ok_or_else(|| err(0, "missing STATE terminal".into()))?;
        let elapsed_us = elapsed_us.ok_or_else(|| err(0, "missing STATE elapsed_us".into()))?;
        let report = report.ok_or_else(|| err(0, "missing REPORT section".into()))?;
        if history.len() != iterations_done || plans.len() != iterations_done {
            return Err(err(
                0,
                format!(
                    "iteration record mismatch: {} ITER, {} plans, iterations_done {}",
                    history.len(),
                    plans.len(),
                    iterations_done
                ),
            ));
        }
        if have_status.iter().any(|&b| !b) || have_selected.iter().any(|&b| !b) {
            return Err(err(0, "iteration missing STATUS or SELECTED record".into()));
        }
        Ok(Checkpoint {
            fingerprint,
            iterations_done,
            terminal,
            elapsed_us,
            history,
            plans,
            report,
            bin_keys,
            iv_entries,
            pearson_entries,
        })
    }
}

fn parse_fingerprint(cfg: &[(String, String)]) -> Result<ConfigFingerprint, String> {
    let get = |key: &str| -> Result<&str, String> {
        cfg.iter()
            .find(|(k, _)| k == key)
            .map(|(_, v)| v.as_str())
            .ok_or_else(|| format!("missing CONFIG {key}"))
    };
    let uint = |key: &str| -> Result<usize, String> {
        get(key)?.parse().map_err(|_| format!("bad CONFIG {key}"))
    };
    let bits = |key: &str| -> Result<f64, String> {
        u64::from_str_radix(get(key)?, 16)
            .map(f64::from_bits)
            .map_err(|_| format!("bad CONFIG {key}"))
    };
    Ok(ConfigFingerprint {
        seed: get("seed")?.parse().map_err(|_| "bad CONFIG seed".to_string())?,
        gamma: uint("gamma")?,
        alpha: bits("alpha")?,
        beta: uint("beta")?,
        theta: bits("theta")?,
        output_multiplier: uint("multiplier")?,
        n_iterations: uint("n_iterations")?,
        strategy: strategy_parse(get("strategy")?)
            .ok_or_else(|| "bad CONFIG strategy".to_string())?,
        selection: selection_parse(get("selection")?)
            .ok_or_else(|| "bad CONFIG selection".to_string())?,
        cache: get("cache")? == "1",
    })
}

/// What [`CheckpointStore::load_latest`] found.
#[derive(Debug)]
pub struct LoadOutcome {
    /// The newest loadable checkpoint, if any.
    pub checkpoint: Option<Checkpoint>,
    /// Path the loaded checkpoint came from.
    pub loaded_from: Option<PathBuf>,
    /// Checkpoint files that existed when the scan started.
    pub candidates: usize,
    /// Files that failed to load, with the reason; each has been renamed
    /// to `<file>.corrupt` (best effort) so it is never retried.
    pub quarantined: Vec<(PathBuf, String)>,
}

/// Directory-backed checkpoint store with atomic writes and a newest-first
/// recovery ladder. Files are named `ckpt-<NNNNNN>.safeckpt`, numbered by
/// `iterations_done`; previous checkpoints are kept so a corrupted latest
/// file can fall back to the one before it.
#[derive(Debug, Clone)]
pub struct CheckpointStore {
    dir: PathBuf,
}

impl CheckpointStore {
    /// A store rooted at `dir` (created on first save).
    pub fn new(dir: impl Into<PathBuf>) -> CheckpointStore {
        CheckpointStore { dir: dir.into() }
    }

    /// The directory this store reads and writes.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// Path of the checkpoint numbered `iterations_done`.
    pub fn path_for(&self, iterations_done: usize) -> PathBuf {
        self.dir.join(format!("ckpt-{iterations_done:06}.safeckpt"))
    }

    /// Durably persist one checkpoint: serialize, write to a `.tmp`
    /// sibling, fsync, rename into place. Returns the byte size written.
    ///
    /// Failpoints (feature `failpoints`) model the I/O faults the chaos
    /// suite injects: `ckpt/write-fail`, `ckpt/fsync-fail`,
    /// `ckpt/rename-fail` error out at the corresponding step;
    /// `ckpt/torn-write` persists a truncated file *successfully* (the
    /// caller believes the save worked — only a later load notices);
    /// `ckpt/corrupt-byte` flips one byte after checksumming.
    pub fn save(&self, ckpt: &Checkpoint) -> Result<u64, CkptError> {
        fs::create_dir_all(&self.dir)?;
        let mut bytes = ckpt.to_text().into_bytes();
        safe_data::failpoint!("ckpt/corrupt-byte" => {
            let mid = bytes.len() / 2;
            bytes[mid] ^= 0x40;
        });
        let mut torn = false;
        safe_data::failpoint!("ckpt/torn-write" => torn = true);
        let final_path = self.path_for(ckpt.iterations_done);
        let tmp_path = final_path.with_extension("safeckpt.tmp");
        safe_data::failpoint!(
            "ckpt/write-fail",
            CkptError::Io(std::io::Error::other("injected: ckpt/write-fail"))
        );
        {
            let mut file = fs::File::create(&tmp_path)?;
            let n = if torn { bytes.len() * 2 / 3 } else { bytes.len() };
            file.write_all(&bytes[..n])?;
            if !torn {
                safe_data::failpoint!(
                    "ckpt/fsync-fail",
                    CkptError::Io(std::io::Error::other("injected: ckpt/fsync-fail"))
                );
                file.sync_all()?;
            }
        }
        safe_data::failpoint!(
            "ckpt/rename-fail",
            CkptError::Io(std::io::Error::other("injected: ckpt/rename-fail"))
        );
        fs::rename(&tmp_path, &final_path)?;
        Ok(bytes.len() as u64)
    }

    /// Checkpoint files currently in the directory, oldest first. Stray
    /// `.tmp` files (crashes mid-write) and `.corrupt` quarantine files are
    /// ignored. A missing directory is an empty store.
    pub fn list(&self) -> Result<Vec<PathBuf>, CkptError> {
        let entries = match fs::read_dir(&self.dir) {
            Ok(e) => e,
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => return Ok(Vec::new()),
            Err(e) => return Err(e.into()),
        };
        let mut files: Vec<PathBuf> = Vec::new();
        for entry in entries {
            let path = entry?.path();
            let name = path.file_name().and_then(|n| n.to_str()).unwrap_or("");
            if name.starts_with("ckpt-") && name.ends_with(".safeckpt") {
                files.push(path);
            }
        }
        files.sort();
        Ok(files)
    }

    /// Walk the recovery ladder: newest checkpoint first, quarantining any
    /// file that fails to read or parse (rename to `<file>.corrupt`, best
    /// effort) and falling back to the next. `Ok` with
    /// `checkpoint: None` means no *loadable* checkpoint — the
    /// `candidates` count tells the caller whether that is a cold start
    /// (zero) or unrecoverable corruption (nonzero).
    pub fn load_latest(&self) -> Result<LoadOutcome, CkptError> {
        let mut files = self.list()?;
        files.reverse();
        let candidates = files.len();
        let mut quarantined: Vec<(PathBuf, String)> = Vec::new();
        for path in files {
            let attempt = Self::read_one(&path);
            match attempt {
                Ok(ckpt) => {
                    return Ok(LoadOutcome {
                        checkpoint: Some(ckpt),
                        loaded_from: Some(path),
                        candidates,
                        quarantined,
                    });
                }
                Err(reason) => {
                    let mut corrupt = path.clone().into_os_string();
                    corrupt.push(".corrupt");
                    let _ = fs::rename(&path, PathBuf::from(corrupt));
                    quarantined.push((path, reason.to_string()));
                }
            }
        }
        Ok(LoadOutcome {
            checkpoint: None,
            loaded_from: None,
            candidates,
            quarantined,
        })
    }

    fn read_one(path: &Path) -> Result<Checkpoint, CkptError> {
        safe_data::failpoint!(
            "ckpt/load-fail",
            CkptError::Io(std::io::Error::other("injected: ckpt/load-fail"))
        );
        let text = fs::read_to_string(path)?;
        Checkpoint::from_text(&text)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use safe_obs::{IterationTelemetry, StageTelemetry, Waterfall};

    fn sample_report() -> RunReport {
        RunReport {
            total_us: 1234,
            setup: vec![StageTelemetry {
                stage: "audit".into(),
                micros: 10,
                features_in: 5,
                features_out: 5,
                counters: vec![("findings".into(), 0)],
            }],
            iterations: vec![IterationTelemetry {
                iteration: 0,
                status: "completed".into(),
                micros: 900,
                stages: vec![StageTelemetry {
                    stage: "iv-filter".into(),
                    micros: 20,
                    features_in: 9,
                    features_out: 7,
                    counters: vec![("dropped_alpha".into(), 2)],
                }],
                waterfall: Waterfall {
                    generated: 4,
                    candidates: 9,
                    post_iv: 7,
                    post_redundancy: 6,
                    selected: 6,
                },
            }],
            warnings: vec![],
            metrics: Default::default(),
        }
    }

    fn sample_checkpoint() -> Checkpoint {
        let plan = FeaturePlan {
            input_names: vec!["a".into(), "b".into()],
            steps: vec![crate::plan::PlanStep {
                name: "mul(a,b)".into(),
                op: "mul".into(),
                parents: vec!["a".into(), "b".into()],
                params: vec![],
            }],
            outputs: vec!["a".into(), "mul(a,b)".into()],
        };
        Checkpoint {
            fingerprint: ConfigFingerprint::of(&SafeConfig::paper()),
            iterations_done: 1,
            terminal: Terminal::Running,
            elapsed_us: 4242,
            history: vec![IterationReport {
                iteration: 0,
                n_combinations: 6,
                n_combinations_kept: 4,
                n_generated: 4,
                n_candidates: 9,
                n_after_iv: 7,
                n_after_redundancy: 6,
                n_selected: 2,
                selected: vec!["a".into(), "mul(a,b)".into()],
                elapsed_us: 900,
                status: IterationStatus::Completed,
            }],
            plans: vec![plan],
            report: sample_report(),
            bin_keys: vec![("a".into(), 255), ("mul(a,b)".into(), 255)],
            iv_entries: 9,
            pearson_entries: 21,
        }
    }

    fn assert_ckpt_eq(a: &Checkpoint, b: &Checkpoint) {
        assert!(a.fingerprint.matches(&b.fingerprint));
        assert_eq!(a.iterations_done, b.iterations_done);
        assert_eq!(a.terminal, b.terminal);
        assert_eq!(a.elapsed_us, b.elapsed_us);
        assert_eq!(a.history.len(), b.history.len());
        for (x, y) in a.history.iter().zip(&b.history) {
            assert!(x.structural_eq(y), "{x:?}\nvs\n{y:?}");
            assert_eq!(x.elapsed_us, y.elapsed_us, "elapsed persists exactly");
        }
        assert_eq!(a.plans, b.plans);
        assert_eq!(a.report, b.report);
        assert_eq!(a.bin_keys, b.bin_keys);
        assert_eq!(a.iv_entries, b.iv_entries);
        assert_eq!(a.pearson_entries, b.pearson_entries);
    }

    #[test]
    fn round_trips_through_text() {
        let ckpt = sample_checkpoint();
        let text = ckpt.to_text();
        let parsed = Checkpoint::from_text(&text).unwrap();
        assert_ckpt_eq(&ckpt, &parsed);
        // And the re-serialization is byte-identical.
        assert_eq!(parsed.to_text(), text);
    }

    #[test]
    fn round_trips_degraded_and_skipped_statuses() {
        let mut ckpt = sample_checkpoint();
        ckpt.history[0].status = IterationStatus::Degraded {
            stage: "rank",
            reason: "booster failed:\twith tab\nand newline \\ backslash".into(),
        };
        ckpt.terminal = Terminal::Degraded;
        let parsed = Checkpoint::from_text(&ckpt.to_text()).unwrap();
        assert_eq!(parsed.history[0].status, ckpt.history[0].status);

        ckpt.history[0].status = IterationStatus::Skipped {
            reason: "time budget exhausted".into(),
        };
        ckpt.terminal = Terminal::Skipped;
        let parsed = Checkpoint::from_text(&ckpt.to_text()).unwrap();
        assert_eq!(parsed.history[0].status, ckpt.history[0].status);
    }

    #[test]
    fn every_terminal_round_trips() {
        for t in [
            Terminal::Running,
            Terminal::Converged,
            Terminal::Degraded,
            Terminal::Skipped,
            Terminal::ItersExhausted,
        ] {
            assert_eq!(Terminal::parse(t.as_str()), Some(t));
            assert_eq!(t.is_final(), t != Terminal::Running);
        }
        assert_eq!(Terminal::parse("nonsense"), None);
    }

    #[test]
    fn corrupted_byte_fails_the_checksum() {
        let text = sample_checkpoint().to_text();
        // Flip one byte in the body (past the two header lines).
        let body_start = text
            .match_indices('\n')
            .nth(1)
            .map(|(i, _)| i + 1)
            .unwrap();
        let mut bytes = text.into_bytes();
        let mid = body_start + (bytes.len() - body_start) / 2;
        bytes[mid] ^= 0x01;
        let corrupted = String::from_utf8(bytes).unwrap();
        assert!(matches!(
            Checkpoint::from_text(&corrupted),
            Err(CkptError::Checksum { .. })
        ));
    }

    #[test]
    fn truncation_at_any_line_fails_closed() {
        let text = sample_checkpoint().to_text();
        // Torn writes truncate at arbitrary byte offsets; every prefix
        // must fail (checksum mismatch or parse error), never parse.
        for k in (0..text.len()).step_by(23) {
            let mut k = k;
            while !text.is_char_boundary(k) {
                k -= 1;
            }
            let torn = &text[..k];
            assert!(
                Checkpoint::from_text(torn).is_err(),
                "prefix of {k} bytes must not parse"
            );
        }
    }

    #[test]
    fn fingerprint_mismatch_is_detected() {
        let base = ConfigFingerprint::of(&SafeConfig::paper());
        let mut other = base.clone();
        assert!(base.matches(&other));
        other.seed = 99;
        assert!(!base.matches(&other));
        let mut other = base.clone();
        other.alpha += 0.01;
        assert!(!base.matches(&other));
        // `cache` is excluded: cached and cold runs are bit-identical.
        let mut other = base.clone();
        other.cache = !other.cache;
        assert!(base.matches(&other));
    }

    fn temp_store(name: &str) -> CheckpointStore {
        let dir = std::env::temp_dir()
            .join("safe_ckpt_tests")
            .join(format!("{name}_{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        CheckpointStore::new(dir)
    }

    #[test]
    fn store_saves_and_reloads() {
        let store = temp_store("roundtrip");
        let ckpt = sample_checkpoint();
        let bytes = store.save(&ckpt).unwrap();
        assert!(bytes > 0);
        let loaded = store.load_latest().unwrap();
        assert_eq!(loaded.candidates, 1);
        assert!(loaded.quarantined.is_empty());
        assert_ckpt_eq(&ckpt, &loaded.checkpoint.unwrap());
        let _ = fs::remove_dir_all(store.dir());
    }

    #[test]
    fn empty_store_is_a_cold_start() {
        let store = temp_store("empty");
        let loaded = store.load_latest().unwrap();
        assert!(loaded.checkpoint.is_none());
        assert_eq!(loaded.candidates, 0);
    }

    #[test]
    fn corrupt_latest_falls_back_to_previous_good() {
        let store = temp_store("ladder");
        let mut ckpt = sample_checkpoint();
        store.save(&ckpt).unwrap();
        ckpt.iterations_done = 2;
        ckpt.history.push(ckpt.history[0].clone());
        ckpt.history[1].iteration = 1;
        ckpt.plans.push(ckpt.plans[0].clone());
        store.save(&ckpt).unwrap();
        // Corrupt the newest file in place.
        let latest = store.path_for(2);
        let mut bytes = fs::read(&latest).unwrap();
        let mid = bytes.len() / 2;
        bytes[mid] ^= 0x20;
        fs::write(&latest, &bytes).unwrap();

        let loaded = store.load_latest().unwrap();
        assert_eq!(loaded.candidates, 2);
        assert_eq!(loaded.quarantined.len(), 1);
        assert!(loaded.quarantined[0].1.contains("checksum"), "{:?}", loaded.quarantined);
        let got = loaded.checkpoint.unwrap();
        assert_eq!(got.iterations_done, 1, "fell back to the previous good checkpoint");
        // The torn file is quarantined, not retried.
        assert!(!latest.exists());
        let corrupt: Vec<_> = fs::read_dir(store.dir())
            .unwrap()
            .filter_map(|e| e.ok())
            .filter(|e| e.file_name().to_string_lossy().ends_with(".corrupt"))
            .collect();
        assert_eq!(corrupt.len(), 1);
        let _ = fs::remove_dir_all(store.dir());
    }

    #[test]
    fn stray_tmp_files_are_ignored() {
        let store = temp_store("straytmp");
        store.save(&sample_checkpoint()).unwrap();
        fs::write(store.dir().join("ckpt-000002.safeckpt.tmp"), b"partial").unwrap();
        let loaded = store.load_latest().unwrap();
        assert_eq!(loaded.candidates, 1, ".tmp files are not candidates");
        assert_eq!(loaded.checkpoint.unwrap().iterations_done, 1);
        let _ = fs::remove_dir_all(store.dir());
    }

    #[test]
    fn empty_history_round_trips() {
        let ckpt = Checkpoint {
            fingerprint: ConfigFingerprint::of(&SafeConfig::paper()),
            iterations_done: 0,
            terminal: Terminal::Running,
            elapsed_us: 0,
            history: vec![],
            plans: vec![],
            report: RunReport::default(),
            bin_keys: vec![],
            iv_entries: 0,
            pearson_entries: 0,
        };
        let parsed = Checkpoint::from_text(&ckpt.to_text()).unwrap();
        assert_ckpt_eq(&ckpt, &parsed);
    }
}
