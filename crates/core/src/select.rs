//! The three-step feature selection pipeline (Section IV-C).
//!
//! Each step has a `_cached` variant that reuses finalized IV / Pearson
//! values (and binned booster columns) from the [`crate::cache`] module
//! across iterations. Cached results are bit-identical to recomputation —
//! the cache stores exactly the `f64` the cold path would produce.

use safe_data::dataset::Dataset;
use safe_gbm::binner::BinCache;
use safe_gbm::booster::Gbm;
use safe_gbm::config::GbmConfig;
use safe_gbm::error::GbmError;
use safe_gbm::importance::ImportanceKind;
use safe_stats::iv::information_value;
use safe_stats::par::{ParPanic, Parallelism};
use safe_stats::pearson::pearson;

use crate::cache::StatsCache;

/// Algorithm 3: compute the IV of every candidate column (β equal-frequency
/// bins, in parallel) and keep those with `IV > α`. Returns the surviving
/// `(column index, IV)` pairs in the original column order.
///
/// Unlabeled data has no IV, so nothing can clear α: the result is empty
/// (the caller treats an empty survivor set as "keep the current features
/// and stop", never as a panic).
pub fn iv_filter(train: &Dataset, alpha: f64, beta: usize) -> Vec<(usize, f64)> {
    match iv_filter_par(train, alpha, beta, Parallelism::auto()) {
        Ok(kept) => kept,
        Err(p) => panic!("{p}"),
    }
}

/// [`iv_filter`] with an explicit thread budget. A panic inside a worker
/// (one poisoned column) is captured and surfaced as [`ParPanic`] so the
/// caller can degrade the iteration instead of unwinding the whole run.
pub fn iv_filter_par(
    train: &Dataset,
    alpha: f64,
    beta: usize,
    par: Parallelism,
) -> Result<Vec<(usize, f64)>, ParPanic> {
    iv_filter_cached(train, alpha, beta, par, None)
}

/// [`iv_filter_par`] with an optional [`StatsCache`]: columns whose IV is
/// already cached (keyed by name + β) skip the computation; only the misses
/// run through the parallel map, and their values are stored back. The kept
/// set is bit-identical with and without a cache.
pub fn iv_filter_cached(
    train: &Dataset,
    alpha: f64,
    beta: usize,
    par: Parallelism,
    cache: Option<&mut StatsCache>,
) -> Result<Vec<(usize, f64)>, ParPanic> {
    safe_data::failpoint!("select/iv-empty" => return Ok(Vec::new()));
    let Some(labels) = train.labels() else {
        return Ok(Vec::new());
    };
    let cols: Vec<&[f64]> = train.columns().collect();
    let compute = |f: usize| {
        safe_data::failpoint!(
            "select/iv-worker-panic" => panic!("injected worker panic: select/iv-worker-panic")
        );
        information_value(cols[f], labels, beta).unwrap_or(0.0)
    };
    let ivs: Vec<f64> = match cache {
        None => safe_stats::par::try_par_map(par, cols.len(), compute)?,
        Some(cache) => {
            let names = train.feature_names();
            let mut resolved: Vec<Option<f64>> =
                names.iter().map(|n| cache.iv_lookup(n, beta)).collect();
            let miss_idx: Vec<usize> = (0..cols.len())
                .filter(|&f| resolved[f].is_none())
                .collect();
            let computed =
                safe_stats::par::try_par_map(par, miss_idx.len(), |k| compute(miss_idx[k]))?;
            for (&f, &iv) in miss_idx.iter().zip(&computed) {
                cache.iv_insert(names[f], beta, iv);
                resolved[f] = Some(iv);
            }
            resolved.into_iter().map(|v| v.unwrap_or(0.0)).collect()
        }
    };
    Ok(ivs
        .into_iter()
        .enumerate()
        .filter(|&(_, iv)| iv > alpha)
        .collect())
}

/// Algorithm 4: redundancy removal. Candidates are visited in descending-IV
/// order; a candidate is kept unless it correlates above θ (absolute
/// Pearson) with an already-kept feature.
///
/// (The paper's pseudo-code adds the higher-IV member of each offending pair
/// to the output; taken literally that drops uncorrelated features entirely,
/// so — like every scorecard implementation of this step — we implement the
/// stated *intent*: "if the pearson correlation of the two features is
/// greater than 0.8, the feature with the smaller IV of them will be
/// removed".)
///
/// Returns surviving column indices in descending-IV order. Pair
/// correlations are computed in parallel per kept-candidate row.
pub fn redundancy_filter(
    train: &Dataset,
    survivors: &[(usize, f64)],
    theta: f64,
) -> Vec<usize> {
    match redundancy_filter_observed(train, survivors, theta, Parallelism::auto()) {
        Ok((kept, _)) => kept,
        Err(p) => panic!("{p}"),
    }
}

/// [`redundancy_filter`] with an explicit thread budget, additionally
/// reporting how many candidate/kept pairs were correlation-tested.
/// Worker panics surface as [`ParPanic`].
pub fn redundancy_filter_observed(
    train: &Dataset,
    survivors: &[(usize, f64)],
    theta: f64,
    par: Parallelism,
) -> Result<(Vec<usize>, u64), ParPanic> {
    redundancy_filter_cached(train, survivors, theta, par, None)
}

/// [`redundancy_filter_observed`] with an optional [`StatsCache`]: pair
/// correlations already cached (keyed by the unordered column-name pair) are
/// reused; only the missing pairs are computed (in parallel) and stored
/// back. `pairs_compared` counts every pair examined, hit or miss, so the
/// telemetry flow is identical with and without a cache — and so is the
/// kept set, bitwise.
pub fn redundancy_filter_cached(
    train: &Dataset,
    survivors: &[(usize, f64)],
    theta: f64,
    par: Parallelism,
    mut cache: Option<&mut StatsCache>,
) -> Result<(Vec<usize>, u64), ParPanic> {
    let mut pairs_compared: u64 = 0;
    let mut order: Vec<(usize, f64)> = survivors.to_vec();
    order.sort_by(|a, b| {
        b.1.partial_cmp(&a.1)
            .unwrap_or(std::cmp::Ordering::Equal)
            .then(a.0.cmp(&b.0))
    });
    let cols: Vec<&[f64]> = train.columns().collect();
    let names = train.feature_names();
    let mut kept: Vec<usize> = Vec::new();
    for &(candidate, _) in &order {
        // Out-of-range survivor indices cannot be kept (defensive: survivor
        // lists always come from iv_filter over the same dataset).
        let Some(&col) = cols.get(candidate) else {
            continue;
        };
        // Compare against all kept features in parallel; any hit disqualifies.
        pairs_compared += kept.len() as u64;
        let redundant = match cache.as_mut() {
            None => {
                let hits = safe_stats::par::try_par_map(par, kept.len(), |i| {
                    pearson(col, cols[kept[i]]).abs() > theta
                })?;
                hits.into_iter().any(|h| h)
            }
            Some(cache) => {
                let mut rho: Vec<Option<f64>> = kept
                    .iter()
                    .map(|&k| cache.pearson_lookup(names[candidate], names[k]))
                    .collect();
                let miss_idx: Vec<usize> =
                    (0..kept.len()).filter(|&i| rho[i].is_none()).collect();
                let computed = safe_stats::par::try_par_map(par, miss_idx.len(), |j| {
                    pearson(col, cols[kept[miss_idx[j]]])
                })?;
                for (&i, &r) in miss_idx.iter().zip(&computed) {
                    cache.pearson_insert(names[candidate], names[kept[i]], r);
                    rho[i] = Some(r);
                }
                rho.into_iter().any(|r| r.unwrap_or(0.0).abs() > theta)
            }
        };
        if !redundant {
            kept.push(candidate);
        }
    }
    Ok((kept, pairs_compared))
}

/// Section IV-C3: rank the surviving candidates by average split gain of a
/// booster trained on exactly those columns, and keep at most `cap`.
/// Features the booster never split on rank after used ones, in IV order
/// (`fallback_order`). Returns column indices **into `train`**.
pub fn rank_and_cap(
    train: &Dataset,
    valid: Option<&Dataset>,
    survivors: &[usize],
    ranker: &GbmConfig,
    cap: usize,
) -> Result<Vec<usize>, GbmError> {
    rank_and_cap_observed(train, valid, survivors, ranker, cap, &safe_obs::NullSink, None)
        .map(|(idx, _)| idx)
}

/// [`rank_and_cap`], additionally emitting the internal booster's training
/// counters through `sink` under the `rank-topk` stage and returning them.
pub fn rank_and_cap_observed(
    train: &Dataset,
    valid: Option<&Dataset>,
    survivors: &[usize],
    ranker: &GbmConfig,
    cap: usize,
    sink: &dyn safe_obs::EventSink,
    iteration: Option<usize>,
) -> Result<(Vec<usize>, safe_gbm::GbmFitStats), GbmError> {
    rank_and_cap_cached(train, valid, survivors, ranker, cap, None, sink, iteration)
}

/// [`rank_and_cap_observed`] with an optional [`BinCache`] for the internal
/// ranking booster. Column selection preserves names and values, so binned
/// columns cached by the miner (or a previous iteration's ranker) are reused
/// directly; the trained model — and therefore the returned ranking — is
/// bit-identical with and without the cache.
#[allow(clippy::too_many_arguments)]
pub fn rank_and_cap_cached(
    train: &Dataset,
    valid: Option<&Dataset>,
    survivors: &[usize],
    ranker: &GbmConfig,
    cap: usize,
    cache: Option<&mut BinCache>,
    sink: &dyn safe_obs::EventSink,
    iteration: Option<usize>,
) -> Result<(Vec<usize>, safe_gbm::GbmFitStats), GbmError> {
    safe_data::failpoint!("select/rank", GbmError::Injected("select/rank"));
    if survivors.is_empty() {
        return Ok((Vec::new(), safe_gbm::GbmFitStats::default()));
    }
    if survivors.len() <= cap {
        // Still rank for deterministic ordering, but nothing to cut.
        // Fall through so the returned order is importance-based.
    }
    let sub_train = train.select_columns(survivors)?;
    let sub_valid = match valid {
        Some(v) => Some(v.select_columns(survivors)?),
        None => None,
    };
    let (model, stats) = Gbm::new(ranker.clone()).fit_cached_observed(
        &sub_train,
        sub_valid.as_ref(),
        cache,
        sink,
        safe_obs::stages::RANK_TOPK,
        iteration,
    )?;
    let importance = model.importance(ImportanceKind::AverageGain);
    let mut order: Vec<usize> = (0..survivors.len()).collect();
    order.sort_by(|&a, &b| {
        importance.scores[b]
            .partial_cmp(&importance.scores[a])
            .unwrap_or(std::cmp::Ordering::Equal)
            .then(a.cmp(&b))
    });
    let selected = order.into_iter().take(cap).map(|i| survivors[i]).collect();
    Ok((selected, stats))
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Columns: strong signal, its near-copy, weak signal, pure noise.
    fn fixture(n: usize) -> Dataset {
        let labels: Vec<u8> = (0..n).map(|i| (i >= n / 2) as u8).collect();
        let strong: Vec<f64> = (0..n).map(|i| i as f64).collect();
        let copy: Vec<f64> = strong.iter().map(|v| v * 2.0 + 1.0).collect();
        let weak: Vec<f64> = (0..n)
            .map(|i| if i % 5 == 0 { (i >= n / 2) as u8 as f64 } else { (i % 2) as f64 })
            .collect();
        let noise: Vec<f64> = (0..n).map(|i| ((i * 7919) % 97) as f64).collect();
        Dataset::from_columns(
            vec!["strong".into(), "copy".into(), "weak".into(), "noise".into()],
            vec![strong, copy, weak, noise],
            Some(labels),
        )
        .unwrap()
    }

    #[test]
    fn iv_filter_drops_noise_keeps_signal() {
        let ds = fixture(1000);
        let kept = iv_filter(&ds, 0.1, 10);
        let indices: Vec<usize> = kept.iter().map(|&(i, _)| i).collect();
        assert!(indices.contains(&0), "strong signal survives");
        assert!(indices.contains(&1), "the copy also has high IV");
        assert!(!indices.contains(&3), "noise must be dropped");
        for &(_, iv) in &kept {
            assert!(iv > 0.1);
        }
    }

    #[test]
    fn iv_filter_respects_alpha() {
        let ds = fixture(1000);
        let loose = iv_filter(&ds, 0.0, 10);
        let strict = iv_filter(&ds, 50.0, 10);
        assert!(loose.len() >= iv_filter(&ds, 0.1, 10).len());
        assert!(strict.is_empty(), "nothing clears an absurd threshold");
    }

    #[test]
    fn redundancy_filter_keeps_one_of_each_pair() {
        let ds = fixture(1000);
        let survivors = iv_filter(&ds, 0.1, 10);
        let kept = redundancy_filter(&ds, &survivors, 0.8);
        // strong and copy are affinely related (ρ = 1): only one survives.
        let both = kept.contains(&0) && kept.contains(&1);
        assert!(!both, "perfectly correlated pair must lose a member: {kept:?}");
        assert!(kept.contains(&0) || kept.contains(&1));
    }

    #[test]
    fn redundancy_filter_no_false_drops() {
        // Uncorrelated survivors all stay.
        let n = 400;
        let labels: Vec<u8> = (0..n).map(|i| (i >= n / 2) as u8).collect();
        let a: Vec<f64> = (0..n).map(|i| i as f64).collect();
        let b: Vec<f64> = (0..n).map(|i| ((i * 31) % n) as f64).collect();
        let ds = Dataset::from_columns(
            vec!["a".into(), "b".into()],
            vec![a, b],
            Some(labels),
        )
        .unwrap();
        let survivors = vec![(0, 2.0), (1, 1.0)];
        let kept = redundancy_filter(&ds, &survivors, 0.8);
        assert_eq!(kept.len(), 2);
    }

    #[test]
    fn redundancy_filter_prefers_higher_iv() {
        let ds = fixture(1000);
        // Force explicit IVs: column 1 higher than column 0.
        let survivors = vec![(0, 0.5), (1, 0.9)];
        let kept = redundancy_filter(&ds, &survivors, 0.8);
        assert_eq!(kept, vec![1], "higher-IV member of the pair wins");
    }

    #[test]
    fn rank_and_cap_puts_signal_first() {
        let ds = fixture(1000);
        let survivors = vec![0, 2, 3];
        let ranked = rank_and_cap(&ds, None, &survivors, &GbmConfig::miner(), 2).unwrap();
        assert_eq!(ranked.len(), 2);
        assert_eq!(ranked[0], 0, "strong signal ranks first: {ranked:?}");
    }

    #[test]
    fn rank_and_cap_handles_empty() {
        let ds = fixture(100);
        let ranked = rank_and_cap(&ds, None, &[], &GbmConfig::miner(), 5).unwrap();
        assert!(ranked.is_empty());
    }

    #[test]
    fn rank_and_cap_caps() {
        let ds = fixture(500);
        let survivors = vec![0, 1, 2, 3];
        let ranked = rank_and_cap(&ds, None, &survivors, &GbmConfig::miner(), 3).unwrap();
        assert_eq!(ranked.len(), 3);
    }
}
