//! Plan explanation — the paper's interpretability requirement: "The
//! generated features in our framework can be easily explained, to satisfy
//! the interpretability requirement in industrial tasks."
//!
//! [`explain_plan`] renders each output feature as an infix formula over the
//! raw inputs (recursively expanding intermediate steps), together with its
//! construction depth and, when a reference dataset is given, its
//! Information Value — the report a risk analyst reviews before a feature
//! ships.

use std::collections::HashMap;

use safe_data::dataset::Dataset;

use crate::plan::FeaturePlan;

/// Explanation of one output feature.
#[derive(Debug, Clone, PartialEq)]
pub struct FeatureExplanation {
    /// Feature name as used in the plan.
    pub name: String,
    /// Infix formula over raw inputs, e.g. `(amt ÷ bal)`.
    pub formula: String,
    /// Nesting depth: 0 = raw input, 1 = one operator, …
    pub depth: usize,
    /// Information Value on the reference dataset, when supplied.
    pub iv: Option<f64>,
}

/// Infix symbols for the common operators; everything else renders as
/// `op(args…)`.
fn infix(op: &str) -> Option<&'static str> {
    Some(match op {
        "add" => "+",
        "sub" => "−",
        "mul" => "×",
        "div" => "÷",
        _ => return None,
    })
}

fn formula_of(
    name: &str,
    steps: &HashMap<&str, (&str, &[String])>,
    depth: usize,
) -> (String, usize) {
    match steps.get(name) {
        None => (name.to_string(), depth),
        Some((op, parents)) => {
            let rendered: Vec<(String, usize)> = parents
                .iter()
                .map(|p| formula_of(p, steps, depth + 1))
                .collect();
            let max_depth = rendered.iter().map(|(_, d)| *d).max().unwrap_or(depth + 1);
            let args: Vec<String> = rendered.into_iter().map(|(f, _)| f).collect();
            let text = match (infix(op), args.len()) {
                (Some(sym), 2) => format!("({} {} {})", args[0], sym, args[1]),
                _ => format!("{op}({})", args.join(", ")),
            };
            (text, max_depth)
        }
    }
}

/// Explain every output of a plan. When `reference` is provided (typically
/// the training set), the plan is applied to it and each output's IV
/// (β = 10 equal-frequency bins) is attached.
pub fn explain_plan(plan: &FeaturePlan, reference: Option<&Dataset>) -> Vec<FeatureExplanation> {
    let steps: HashMap<&str, (&str, &[String])> = plan
        .steps
        .iter()
        .map(|s| (s.name.as_str(), (s.op.as_str(), s.parents.as_slice())))
        .collect();

    let ivs: Option<HashMap<String, f64>> = reference.and_then(|ds| {
        let transformed = plan.apply(ds).ok()?;
        let labels = transformed.labels()?.to_vec();
        Some(
            transformed
                .meta()
                .iter()
                .zip(transformed.columns())
                .map(|(meta, col)| {
                    let iv = safe_stats::iv::information_value(col, &labels, 10).unwrap_or(0.0);
                    (meta.name.clone(), iv)
                })
                .collect(),
        )
    });

    plan.outputs
        .iter()
        .map(|name| {
            let (formula, max_depth) = formula_of(name, &steps, 0);
            let depth = if steps.contains_key(name.as_str()) {
                max_depth
            } else {
                0
            };
            FeatureExplanation {
                name: name.clone(),
                formula,
                depth,
                iv: ivs.as_ref().and_then(|m| m.get(name).copied()),
            }
        })
        .collect()
}

/// Render the explanations as an aligned text report.
pub fn explanation_report(explanations: &[FeatureExplanation]) -> String {
    let name_w = explanations.iter().map(|e| e.name.len()).max().unwrap_or(4).max(4);
    let mut out = String::new();
    for e in explanations {
        let iv = match e.iv {
            Some(v) => format!("  IV={v:.3}"),
            None => String::new(),
        };
        out.push_str(&format!(
            "{:<name_w$}  depth={}  {}{}\n",
            e.name, e.depth, e.formula, iv
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::plan::PlanStep;

    fn nested_plan() -> FeaturePlan {
        FeaturePlan {
            input_names: vec!["amt".into(), "bal".into()],
            steps: vec![
                PlanStep {
                    name: "div(amt,bal)".into(),
                    op: "div".into(),
                    parents: vec!["amt".into(), "bal".into()],
                    params: vec![],
                },
                PlanStep {
                    name: "log(div(amt,bal))".into(),
                    op: "log".into(),
                    parents: vec!["div(amt,bal)".into()],
                    params: vec![],
                },
            ],
            outputs: vec!["amt".into(), "log(div(amt,bal))".into()],
        }
    }

    #[test]
    fn raw_inputs_have_depth_zero() {
        let ex = explain_plan(&nested_plan(), None);
        assert_eq!(ex[0].name, "amt");
        assert_eq!(ex[0].depth, 0);
        assert_eq!(ex[0].formula, "amt");
        assert_eq!(ex[0].iv, None);
    }

    #[test]
    fn nested_formula_expands_to_raw_inputs() {
        let ex = explain_plan(&nested_plan(), None);
        assert_eq!(ex[1].formula, "log((amt ÷ bal))");
        assert_eq!(ex[1].depth, 2);
    }

    #[test]
    fn iv_attached_with_reference_data() {
        let ds = Dataset::from_columns(
            vec!["amt".into(), "bal".into()],
            vec![
                (0..200).map(|i| i as f64 + 1.0).collect(),
                vec![10.0; 200],
            ],
            Some((0..200).map(|i| (i >= 100) as u8).collect()),
        )
        .unwrap();
        let ex = explain_plan(&nested_plan(), Some(&ds));
        // The ratio is monotone in amt → perfectly ordered → huge IV.
        let ratio = ex.iter().find(|e| e.name.starts_with("log")).unwrap();
        assert!(ratio.iv.unwrap() > 1.0);
    }

    #[test]
    fn report_is_aligned_text() {
        let ex = explain_plan(&nested_plan(), None);
        let report = explanation_report(&ex);
        assert!(report.contains("depth=0"));
        assert!(report.contains("log((amt ÷ bal))"));
        assert_eq!(report.lines().count(), 2);
    }

    #[test]
    fn non_infix_ops_render_as_calls() {
        let plan = FeaturePlan {
            input_names: vec!["k".into(), "v".into()],
            steps: vec![PlanStep {
                name: "group_then_avg(k,v)".into(),
                op: "group_then_avg".into(),
                parents: vec!["k".into(), "v".into()],
                params: vec![0.0, 1.0, 2.0],
            }],
            outputs: vec!["group_then_avg(k,v)".into()],
        };
        let ex = explain_plan(&plan, None);
        assert_eq!(ex[0].formula, "group_then_avg(k, v)");
        assert_eq!(ex[0].depth, 1);
    }
}
