//! SAFE hyper-parameters.
//!
//! Section IV-E1 (strong applicability): every knob either controls
//! complexity (γ, iteration budget, output cap, miner size) or is a
//! rule-of-thumb constant the paper fixes once for all datasets (α = 0.1
//! from Table I, θ = 0.8 from Table II, β equal-frequency bins).

use safe_data::audit::AuditConfig;
use safe_gbm::config::GbmConfig;
use safe_obs::SinkHandle;
use safe_ops::registry::OperatorRegistry;
use safe_stats::par::Parallelism;
use std::path::PathBuf;
use std::time::Duration;

/// How candidate feature combinations are produced — SAFE proper plus the
/// paper's two ablation baselines (Section V-A1).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum GenerationStrategy {
    /// SAFE: combinations mined from GBM tree paths, ranked by information
    /// gain ratio.
    Mined,
    /// IMP: γ random combinations drawn from the GBM's *split features*.
    RandomSplitFeatures,
    /// RAND: γ random combinations drawn from all features.
    RandomAllFeatures,
}

/// How the selection stage evaluates the candidate pool.
///
/// The mode is **result-determining**: it changes which features survive,
/// so it is part of the checkpoint fingerprint and a resume under a
/// different mode is rejected.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SelectionMode {
    /// The paper's flat pipeline: exact IV filter, exact f64 Pearson
    /// redundancy scan, and a full booster retrain for rank-topk — over
    /// every candidate. Bit-identical to the pre-staged pipeline; the
    /// default.
    Exact,
    /// OpenFE-style successive halving ([`crate::selection::staged`]):
    /// candidates are scored cheaply on small deterministic row
    /// subsamples, the pool is halved per rung on geometrically growing
    /// samples, and only the finalists get exact IV, a binned-Pearson
    /// redundancy scan (`safe_gbm::corr`), and the booster ranking.
    /// Non-finalists are eliminated by their staged scores — no full
    /// booster retrain over the whole pool. Deterministic at every thread
    /// count, but *not* bit-identical to [`SelectionMode::Exact`]; AUC
    /// parity within ±0.005 is pinned by `tests/selection_differential.rs`.
    Staged,
}

/// Configuration of the SAFE pipeline.
#[derive(Debug, Clone)]
pub struct SafeConfig {
    /// γ — number of top feature combinations kept per iteration
    /// (Algorithm 2).
    pub gamma: usize,
    /// α — Information Value threshold (Algorithm 3); features with
    /// IV ≤ α are dropped. Paper default 0.1.
    pub alpha: f64,
    /// β — equal-frequency bins for the IV computation. Paper default 10.
    pub beta: usize,
    /// θ — absolute Pearson threshold (Algorithm 4); of any pair above it,
    /// the lower-IV feature is dropped. Paper default 0.8.
    pub theta: f64,
    /// Final feature budget as a multiple of the original feature count
    /// (the experiments cap output at 2M).
    pub output_multiplier: usize,
    /// nIter — iteration budget (the benchmark experiments use 1).
    pub n_iterations: usize,
    /// tIter — optional wall-clock budget; the loop stops when exceeded.
    pub time_budget: Option<Duration>,
    /// Booster used for combination mining (small: complexity is
    /// O(N·K₁(K₁+K₂)), Eq. 13).
    pub miner: GbmConfig,
    /// Booster used for final feature ranking.
    pub ranker: GbmConfig,
    /// The operator set O.
    pub operators: OperatorRegistry,
    /// SAFE / RAND / IMP.
    pub strategy: GenerationStrategy,
    /// Candidate evaluation mode for the selection stage: the paper's
    /// exact pipeline (default) or staged successive halving. See
    /// [`SelectionMode`].
    pub selection: SelectionMode,
    /// Seed for the randomized strategies and subsampling.
    pub seed: u64,
    /// Pre-fit data audit policy (see [`safe_data::audit`]). The default
    /// warns on degenerate columns without modifying the data; switch to
    /// [`safe_data::AuditPolicy::Repair`] to drop/impute them, or
    /// [`safe_data::AuditPolicy::Reject`] to fail fast.
    pub audit: AuditConfig,
    /// Telemetry sink every pipeline stage reports to (spans, counters,
    /// warnings). Defaults to the no-op [`safe_obs::NullSink`]; attach a
    /// [`safe_obs::JsonlSink`] or [`safe_obs::MemorySink`] via
    /// [`SinkHandle::new`] to observe the run. The sink never influences
    /// pipeline results.
    pub sink: SinkHandle,
    /// Worker-thread budget for the parallel stages (IV, Pearson, IG-ratio
    /// combination scoring, operator application). `threads = 0`
    /// auto-detects, `threads = 1` is the serial path. Every reduction
    /// merges in fixed chunk-index order, so any setting yields
    /// bit-identical results. The miner/ranker boosters carry their own
    /// knob in [`GbmConfig`]; use [`SafeConfig::with_threads`] to set all
    /// three at once.
    pub parallelism: Parallelism,
    /// Reuse per-column work across iterations: binned `u16` columns for the
    /// miner/ranker boosters ([`crate::cache::BinCache`]) and finalized
    /// IV/Pearson statistics ([`crate::cache::StatsCache`]), keyed by stable
    /// column names. Results are **bit-identical** with the cache on or off
    /// (`tests/cache_differential.rs` pins this); disabling only exists for
    /// benchmarking the cold path. Default `true`.
    pub cache: bool,
    /// Directory for durable iteration checkpoints (`SAFECKPT` files, see
    /// [`crate::checkpoint`]). `None` (the default) disables
    /// checkpointing; `Some(dir)` makes `fit` persist a snapshot after
    /// iterations (atomically: temp file → fsync → rename) and enables
    /// [`crate::safe::Safe::fit_resumed`] to continue a killed run
    /// bit-identically.
    pub checkpoint_dir: Option<PathBuf>,
    /// Write a durable checkpoint every N completed iterations (default 1
    /// — every iteration). Terminal snapshots (convergence, degradation,
    /// budget exhaustion) are always written regardless of cadence.
    /// Must be ≥ 1; ignored when `checkpoint_dir` is `None`.
    pub checkpoint_every: usize,
}

impl Default for SafeConfig {
    fn default() -> Self {
        SafeConfig {
            gamma: 30,
            alpha: 0.1,
            beta: 10,
            theta: 0.8,
            output_multiplier: 2,
            n_iterations: 1,
            time_budget: None,
            miner: GbmConfig::miner(),
            ranker: GbmConfig::miner(),
            operators: OperatorRegistry::arithmetic(),
            strategy: GenerationStrategy::Mined,
            selection: SelectionMode::Exact,
            seed: 0,
            audit: AuditConfig::default(),
            sink: SinkHandle::null(),
            parallelism: Parallelism::auto(),
            cache: true,
            checkpoint_dir: None,
            checkpoint_every: 1,
        }
    }
}

impl SafeConfig {
    /// Start a chainable [`SafeConfigBuilder`] seeded with the paper
    /// defaults. Struct-literal construction
    /// (`SafeConfig { gamma: 10, ..SafeConfig::default() }`) keeps working;
    /// the builder adds validation at the end of the chain.
    pub fn builder() -> SafeConfigBuilder {
        SafeConfigBuilder::new()
    }

    /// Paper-experiment configuration: four arithmetic operators, one
    /// iteration, 2M output cap.
    pub fn paper() -> Self {
        SafeConfig::default()
    }

    /// The RAND ablation baseline with otherwise identical settings.
    pub fn rand_baseline(seed: u64) -> Self {
        SafeConfig {
            strategy: GenerationStrategy::RandomAllFeatures,
            seed,
            ..SafeConfig::default()
        }
    }

    /// The IMP ablation baseline with otherwise identical settings.
    pub fn imp_baseline(seed: u64) -> Self {
        SafeConfig {
            strategy: GenerationStrategy::RandomSplitFeatures,
            seed,
            ..SafeConfig::default()
        }
    }

    /// Set the worker-thread budget on the pipeline *and* both internal
    /// boosters (`0` = auto-detect, `1` = serial).
    pub fn with_threads(mut self, threads: usize) -> Self {
        let par = Parallelism::new(threads);
        self.parallelism = par;
        self.miner.parallelism = par;
        self.ranker.parallelism = par;
        self
    }

    /// Validate ranges.
    pub fn validate(&self) -> Result<(), String> {
        if self.gamma == 0 {
            return Err("gamma must be positive".into());
        }
        if !(0.0..=1.0).contains(&self.theta) {
            return Err(format!("theta {} not in [0, 1]", self.theta));
        }
        if self.alpha < 0.0 {
            return Err("alpha must be non-negative".into());
        }
        if self.beta < 2 {
            return Err("beta must be at least 2".into());
        }
        if self.output_multiplier == 0 {
            return Err("output_multiplier must be positive".into());
        }
        if self.n_iterations == 0 && self.time_budget.is_none() {
            return Err("need n_iterations > 0 or a time budget".into());
        }
        if self.operators.is_empty() {
            return Err("operator registry is empty".into());
        }
        if self.checkpoint_every == 0 {
            return Err("checkpoint_every must be at least 1".into());
        }
        self.parallelism.validate()?;
        self.miner.validate()?;
        self.ranker.validate()?;
        Ok(())
    }
}

/// Chainable constructor for [`SafeConfig`].
///
/// Starts from the paper defaults; [`SafeConfigBuilder::build`] runs
/// [`SafeConfig::validate`], so an impossible combination is caught at
/// construction instead of deep inside `Safe::fit`:
///
/// ```
/// use safe_core::SafeConfig;
///
/// let config = SafeConfig::builder()
///     .alpha(0.05)
///     .theta(0.9)
///     .gamma(20)
///     .threads(2)
///     .seed(7)
///     .build()
///     .expect("valid config");
/// assert_eq!(config.gamma, 20);
/// assert!(SafeConfig::builder().gamma(0).build().is_err());
/// ```
#[derive(Debug, Clone, Default)]
pub struct SafeConfigBuilder {
    config: SafeConfig,
}

impl SafeConfigBuilder {
    /// Builder seeded with [`SafeConfig::default`].
    pub fn new() -> Self {
        SafeConfigBuilder {
            config: SafeConfig::default(),
        }
    }

    /// α — Information Value threshold (features with IV ≤ α are dropped).
    pub fn alpha(mut self, alpha: f64) -> Self {
        self.config.alpha = alpha;
        self
    }

    /// θ — absolute Pearson redundancy threshold.
    pub fn theta(mut self, theta: f64) -> Self {
        self.config.theta = theta;
        self
    }

    /// γ — top feature combinations kept per iteration.
    pub fn gamma(mut self, gamma: usize) -> Self {
        self.config.gamma = gamma;
        self
    }

    /// β — equal-frequency bins for the IV computation.
    pub fn beta(mut self, beta: usize) -> Self {
        self.config.beta = beta;
        self
    }

    /// Top-k output cap, expressed as a multiple of the original feature
    /// count (the paper's 2M budget is `output_multiplier(2)`).
    pub fn output_multiplier(mut self, multiplier: usize) -> Self {
        self.config.output_multiplier = multiplier;
        self
    }

    /// nIter — iteration budget.
    pub fn n_iterations(mut self, n: usize) -> Self {
        self.config.n_iterations = n;
        self
    }

    /// tIter — wall-clock budget.
    pub fn time_budget(mut self, budget: Duration) -> Self {
        self.config.time_budget = Some(budget);
        self
    }

    /// SAFE / RAND / IMP generation strategy.
    pub fn strategy(mut self, strategy: GenerationStrategy) -> Self {
        self.config.strategy = strategy;
        self
    }

    /// Selection mode: exact (paper semantics, default) or staged
    /// successive halving.
    pub fn selection(mut self, selection: SelectionMode) -> Self {
        self.config.selection = selection;
        self
    }

    /// The operator set O.
    pub fn operators(mut self, operators: OperatorRegistry) -> Self {
        self.config.operators = operators;
        self
    }

    /// Booster used for combination mining.
    pub fn miner(mut self, miner: GbmConfig) -> Self {
        self.config.miner = miner;
        self
    }

    /// Booster used for final feature ranking.
    pub fn ranker(mut self, ranker: GbmConfig) -> Self {
        self.config.ranker = ranker;
        self
    }

    /// Pre-fit data audit policy.
    pub fn audit(mut self, audit: AuditConfig) -> Self {
        self.config.audit = audit;
        self
    }

    /// Telemetry sink for all pipeline stages.
    pub fn sink(mut self, sink: SinkHandle) -> Self {
        self.config.sink = sink;
        self
    }

    /// Worker-thread budget on the pipeline and both internal boosters
    /// (`0` = auto-detect, `1` = serial) — same as
    /// [`SafeConfig::with_threads`].
    pub fn threads(mut self, threads: usize) -> Self {
        self.config = self.config.with_threads(threads);
        self
    }

    /// Seed for the randomized strategies and subsampling.
    pub fn seed(mut self, seed: u64) -> Self {
        self.config.seed = seed;
        self
    }

    /// Toggle the cross-iteration training caches (bin columns, IV/Pearson
    /// values). On by default; results are bit-identical either way.
    pub fn cache(mut self, cache: bool) -> Self {
        self.config.cache = cache;
        self
    }

    /// Directory for durable iteration checkpoints (enables crash-safe
    /// training and [`crate::safe::Safe::fit_resumed`]).
    pub fn checkpoint_dir(mut self, dir: impl Into<PathBuf>) -> Self {
        self.config.checkpoint_dir = Some(dir.into());
        self
    }

    /// Checkpoint cadence: write a snapshot every N completed iterations
    /// (terminal snapshots are always written). Must be ≥ 1.
    pub fn checkpoint_every(mut self, every: usize) -> Self {
        self.config.checkpoint_every = every;
        self
    }

    /// Validate and return the finished configuration.
    pub fn build(self) -> Result<SafeConfig, String> {
        self.config.validate()?;
        Ok(self.config)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_matches_paper_constants() {
        let c = SafeConfig::paper();
        assert_eq!(c.alpha, 0.1, "Table I medium-predictor edge");
        assert_eq!(c.selection, SelectionMode::Exact, "exact selection is the pinned default");
        assert_eq!(c.theta, 0.8, "Table II extremely-strong edge");
        assert_eq!(c.output_multiplier, 2, "2M output cap");
        assert_eq!(c.n_iterations, 1, "benchmark experiments use one iteration");
        assert_eq!(c.operators.names(), vec!["add", "sub", "mul", "div"]);
        assert!(c.validate().is_ok());
    }

    #[test]
    fn baselines_share_selection_settings() {
        let safe = SafeConfig::paper();
        let rand = SafeConfig::rand_baseline(1);
        let imp = SafeConfig::imp_baseline(1);
        assert_eq!(rand.alpha, safe.alpha);
        assert_eq!(imp.theta, safe.theta);
        assert_eq!(rand.strategy, GenerationStrategy::RandomAllFeatures);
        assert_eq!(imp.strategy, GenerationStrategy::RandomSplitFeatures);
    }

    #[test]
    fn invalid_configs_rejected() {
        let mut c = SafeConfig::default();
        c.gamma = 0;
        assert!(c.validate().is_err());

        let mut c = SafeConfig::default();
        c.theta = 1.5;
        assert!(c.validate().is_err());

        let mut c = SafeConfig::default();
        c.beta = 1;
        assert!(c.validate().is_err());

        let mut c = SafeConfig::default();
        c.n_iterations = 0;
        assert!(c.validate().is_err());
        c.time_budget = Some(Duration::from_secs(1));
        assert!(c.validate().is_ok(), "time budget alone is a valid stop rule");

        let mut c = SafeConfig::default();
        c.operators = OperatorRegistry::empty();
        assert!(c.validate().is_err());

        let c = SafeConfig::default().with_threads(100_000);
        assert!(c.validate().is_err(), "absurd thread counts are rejected");
    }

    #[test]
    fn builder_matches_struct_literal() {
        let built = SafeConfig::builder()
            .alpha(0.2)
            .theta(0.7)
            .gamma(12)
            .beta(8)
            .output_multiplier(3)
            .n_iterations(2)
            .seed(42)
            .threads(2)
            .build()
            .unwrap();
        let literal = SafeConfig {
            alpha: 0.2,
            theta: 0.7,
            gamma: 12,
            beta: 8,
            output_multiplier: 3,
            n_iterations: 2,
            seed: 42,
            ..SafeConfig::default()
        }
        .with_threads(2);
        assert_eq!(built.alpha, literal.alpha);
        assert_eq!(built.theta, literal.theta);
        assert_eq!(built.gamma, literal.gamma);
        assert_eq!(built.beta, literal.beta);
        assert_eq!(built.output_multiplier, literal.output_multiplier);
        assert_eq!(built.n_iterations, literal.n_iterations);
        assert_eq!(built.seed, literal.seed);
        assert_eq!(built.parallelism, literal.parallelism);
        assert_eq!(built.miner.parallelism, literal.miner.parallelism);
    }

    #[test]
    fn builder_build_runs_validation() {
        assert!(SafeConfig::builder().gamma(0).build().is_err());
        assert!(SafeConfig::builder().theta(1.5).build().is_err());
        assert!(SafeConfig::builder().beta(1).build().is_err());
        assert!(SafeConfig::builder().threads(100_000).build().is_err());
        assert!(SafeConfig::builder()
            .operators(OperatorRegistry::empty())
            .build()
            .is_err());
        assert!(SafeConfig::builder()
            .n_iterations(0)
            .time_budget(Duration::from_secs(1))
            .build()
            .is_ok());
    }

    #[test]
    fn checkpoint_settings_validate_and_build() {
        let c = SafeConfig::builder()
            .checkpoint_dir("/tmp/safe-ckpt")
            .checkpoint_every(3)
            .build()
            .unwrap();
        assert_eq!(c.checkpoint_dir.as_deref(), Some(std::path::Path::new("/tmp/safe-ckpt")));
        assert_eq!(c.checkpoint_every, 3);
        assert!(SafeConfig::builder().checkpoint_every(0).build().is_err());
        // Defaults: checkpointing off, cadence 1.
        let d = SafeConfig::paper();
        assert!(d.checkpoint_dir.is_none());
        assert_eq!(d.checkpoint_every, 1);
    }

    #[test]
    fn with_threads_sets_all_three_knobs() {
        let c = SafeConfig::default().with_threads(4);
        assert_eq!(c.parallelism, Parallelism::new(4));
        assert_eq!(c.miner.parallelism, Parallelism::new(4));
        assert_eq!(c.ranker.parallelism, Parallelism::new(4));
        assert!(c.validate().is_ok());

        let auto = SafeConfig::default().with_threads(0);
        assert_eq!(auto.parallelism, Parallelism::auto());
        assert!(auto.validate().is_ok());
    }
}
