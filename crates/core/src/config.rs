//! SAFE hyper-parameters.
//!
//! Section IV-E1 (strong applicability): every knob either controls
//! complexity (γ, iteration budget, output cap, miner size) or is a
//! rule-of-thumb constant the paper fixes once for all datasets (α = 0.1
//! from Table I, θ = 0.8 from Table II, β equal-frequency bins).

use safe_data::audit::AuditConfig;
use safe_gbm::config::GbmConfig;
use safe_obs::SinkHandle;
use safe_ops::registry::OperatorRegistry;
use safe_stats::par::Parallelism;
use std::time::Duration;

/// How candidate feature combinations are produced — SAFE proper plus the
/// paper's two ablation baselines (Section V-A1).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum GenerationStrategy {
    /// SAFE: combinations mined from GBM tree paths, ranked by information
    /// gain ratio.
    Mined,
    /// IMP: γ random combinations drawn from the GBM's *split features*.
    RandomSplitFeatures,
    /// RAND: γ random combinations drawn from all features.
    RandomAllFeatures,
}

/// Configuration of the SAFE pipeline.
#[derive(Debug, Clone)]
pub struct SafeConfig {
    /// γ — number of top feature combinations kept per iteration
    /// (Algorithm 2).
    pub gamma: usize,
    /// α — Information Value threshold (Algorithm 3); features with
    /// IV ≤ α are dropped. Paper default 0.1.
    pub alpha: f64,
    /// β — equal-frequency bins for the IV computation. Paper default 10.
    pub beta: usize,
    /// θ — absolute Pearson threshold (Algorithm 4); of any pair above it,
    /// the lower-IV feature is dropped. Paper default 0.8.
    pub theta: f64,
    /// Final feature budget as a multiple of the original feature count
    /// (the experiments cap output at 2M).
    pub output_multiplier: usize,
    /// nIter — iteration budget (the benchmark experiments use 1).
    pub n_iterations: usize,
    /// tIter — optional wall-clock budget; the loop stops when exceeded.
    pub time_budget: Option<Duration>,
    /// Booster used for combination mining (small: complexity is
    /// O(N·K₁(K₁+K₂)), Eq. 13).
    pub miner: GbmConfig,
    /// Booster used for final feature ranking.
    pub ranker: GbmConfig,
    /// The operator set O.
    pub operators: OperatorRegistry,
    /// SAFE / RAND / IMP.
    pub strategy: GenerationStrategy,
    /// Seed for the randomized strategies and subsampling.
    pub seed: u64,
    /// Pre-fit data audit policy (see [`safe_data::audit`]). The default
    /// warns on degenerate columns without modifying the data; switch to
    /// [`safe_data::AuditPolicy::Repair`] to drop/impute them, or
    /// [`safe_data::AuditPolicy::Reject`] to fail fast.
    pub audit: AuditConfig,
    /// Telemetry sink every pipeline stage reports to (spans, counters,
    /// warnings). Defaults to the no-op [`safe_obs::NullSink`]; attach a
    /// [`safe_obs::JsonlSink`] or [`safe_obs::MemorySink`] via
    /// [`SinkHandle::new`] to observe the run. The sink never influences
    /// pipeline results.
    pub sink: SinkHandle,
    /// Worker-thread budget for the parallel stages (IV, Pearson, IG-ratio
    /// combination scoring, operator application). `threads = 0`
    /// auto-detects, `threads = 1` is the serial path. Every reduction
    /// merges in fixed chunk-index order, so any setting yields
    /// bit-identical results. The miner/ranker boosters carry their own
    /// knob in [`GbmConfig`]; use [`SafeConfig::with_threads`] to set all
    /// three at once.
    pub parallelism: Parallelism,
}

impl Default for SafeConfig {
    fn default() -> Self {
        SafeConfig {
            gamma: 30,
            alpha: 0.1,
            beta: 10,
            theta: 0.8,
            output_multiplier: 2,
            n_iterations: 1,
            time_budget: None,
            miner: GbmConfig::miner(),
            ranker: GbmConfig::miner(),
            operators: OperatorRegistry::arithmetic(),
            strategy: GenerationStrategy::Mined,
            seed: 0,
            audit: AuditConfig::default(),
            sink: SinkHandle::null(),
            parallelism: Parallelism::auto(),
        }
    }
}

impl SafeConfig {
    /// Paper-experiment configuration: four arithmetic operators, one
    /// iteration, 2M output cap.
    pub fn paper() -> Self {
        SafeConfig::default()
    }

    /// The RAND ablation baseline with otherwise identical settings.
    pub fn rand_baseline(seed: u64) -> Self {
        SafeConfig {
            strategy: GenerationStrategy::RandomAllFeatures,
            seed,
            ..SafeConfig::default()
        }
    }

    /// The IMP ablation baseline with otherwise identical settings.
    pub fn imp_baseline(seed: u64) -> Self {
        SafeConfig {
            strategy: GenerationStrategy::RandomSplitFeatures,
            seed,
            ..SafeConfig::default()
        }
    }

    /// Set the worker-thread budget on the pipeline *and* both internal
    /// boosters (`0` = auto-detect, `1` = serial).
    pub fn with_threads(mut self, threads: usize) -> Self {
        let par = Parallelism::new(threads);
        self.parallelism = par;
        self.miner.parallelism = par;
        self.ranker.parallelism = par;
        self
    }

    /// Validate ranges.
    pub fn validate(&self) -> Result<(), String> {
        if self.gamma == 0 {
            return Err("gamma must be positive".into());
        }
        if !(0.0..=1.0).contains(&self.theta) {
            return Err(format!("theta {} not in [0, 1]", self.theta));
        }
        if self.alpha < 0.0 {
            return Err("alpha must be non-negative".into());
        }
        if self.beta < 2 {
            return Err("beta must be at least 2".into());
        }
        if self.output_multiplier == 0 {
            return Err("output_multiplier must be positive".into());
        }
        if self.n_iterations == 0 && self.time_budget.is_none() {
            return Err("need n_iterations > 0 or a time budget".into());
        }
        if self.operators.is_empty() {
            return Err("operator registry is empty".into());
        }
        self.parallelism.validate()?;
        self.miner.validate()?;
        self.ranker.validate()?;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_matches_paper_constants() {
        let c = SafeConfig::paper();
        assert_eq!(c.alpha, 0.1, "Table I medium-predictor edge");
        assert_eq!(c.theta, 0.8, "Table II extremely-strong edge");
        assert_eq!(c.output_multiplier, 2, "2M output cap");
        assert_eq!(c.n_iterations, 1, "benchmark experiments use one iteration");
        assert_eq!(c.operators.names(), vec!["add", "sub", "mul", "div"]);
        assert!(c.validate().is_ok());
    }

    #[test]
    fn baselines_share_selection_settings() {
        let safe = SafeConfig::paper();
        let rand = SafeConfig::rand_baseline(1);
        let imp = SafeConfig::imp_baseline(1);
        assert_eq!(rand.alpha, safe.alpha);
        assert_eq!(imp.theta, safe.theta);
        assert_eq!(rand.strategy, GenerationStrategy::RandomAllFeatures);
        assert_eq!(imp.strategy, GenerationStrategy::RandomSplitFeatures);
    }

    #[test]
    fn invalid_configs_rejected() {
        let mut c = SafeConfig::default();
        c.gamma = 0;
        assert!(c.validate().is_err());

        let mut c = SafeConfig::default();
        c.theta = 1.5;
        assert!(c.validate().is_err());

        let mut c = SafeConfig::default();
        c.beta = 1;
        assert!(c.validate().is_err());

        let mut c = SafeConfig::default();
        c.n_iterations = 0;
        assert!(c.validate().is_err());
        c.time_budget = Some(Duration::from_secs(1));
        assert!(c.validate().is_ok(), "time budget alone is a valid stop rule");

        let mut c = SafeConfig::default();
        c.operators = OperatorRegistry::empty();
        assert!(c.validate().is_err());

        let c = SafeConfig::default().with_threads(100_000);
        assert!(c.validate().is_err(), "absurd thread counts are rejected");
    }

    #[test]
    fn with_threads_sets_all_three_knobs() {
        let c = SafeConfig::default().with_threads(4);
        assert_eq!(c.parallelism, Parallelism::new(4));
        assert_eq!(c.miner.parallelism, Parallelism::new(4));
        assert_eq!(c.ranker.parallelism, Parallelism::new(4));
        assert!(c.validate().is_ok());

        let auto = SafeConfig::default().with_threads(0);
        assert_eq!(auto.parallelism, Parallelism::auto());
        assert!(auto.validate().is_ok());
    }
}
