//! A common interface over every feature engineering method the experiments
//! compare: ORIG (identity), SAFE, RAND, IMP (this crate) and the external
//! baselines TFC / FCTree (`safe-baselines`).

use safe_data::dataset::Dataset;

use crate::config::GenerationStrategy;
use crate::plan::FeaturePlan;
use crate::safe::Safe;

/// Anything that learns a feature-generation function Ψ from training data.
pub trait FeatureEngineer: Send + Sync {
    /// Method name as printed in the paper's tables (SAFE, RAND, IMP, ORIG,
    /// TFC, FCT).
    fn method_name(&self) -> &'static str;

    /// Learn Ψ.
    fn engineer(
        &self,
        train: &Dataset,
        valid: Option<&Dataset>,
    ) -> Result<FeaturePlan, String>;
}

impl FeatureEngineer for Safe {
    fn method_name(&self) -> &'static str {
        match self.config().strategy {
            GenerationStrategy::Mined => "SAFE",
            GenerationStrategy::RandomSplitFeatures => "IMP",
            GenerationStrategy::RandomAllFeatures => "RAND",
        }
    }
    fn engineer(
        &self,
        train: &Dataset,
        valid: Option<&Dataset>,
    ) -> Result<FeaturePlan, String> {
        self.fit(train, valid)
            .map(|o| o.plan)
            .map_err(|e| e.to_string())
    }
}

/// ORIG: the identity transformation (original features untouched).
#[derive(Debug, Clone, Copy, Default)]
pub struct Identity;

impl FeatureEngineer for Identity {
    fn method_name(&self) -> &'static str {
        "ORIG"
    }
    fn engineer(
        &self,
        train: &Dataset,
        _valid: Option<&Dataset>,
    ) -> Result<FeaturePlan, String> {
        let names: Vec<String> = train.feature_names().iter().map(|s| s.to_string()).collect();
        Ok(FeaturePlan {
            input_names: names.clone(),
            steps: Vec::new(),
            outputs: names,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::SafeConfig;

    #[test]
    fn identity_passes_features_through() {
        let ds = Dataset::from_columns(
            vec!["a".into(), "b".into()],
            vec![vec![1.0, 2.0], vec![3.0, 4.0]],
            Some(vec![0, 1]),
        )
        .unwrap();
        let plan = Identity.engineer(&ds, None).unwrap();
        let out = plan.apply(&ds).unwrap();
        assert_eq!(out.n_cols(), 2);
        assert_eq!(out.column(0).unwrap(), ds.column(0).unwrap());
        assert_eq!(Identity.method_name(), "ORIG");
    }

    #[test]
    fn method_names_follow_strategy() {
        assert_eq!(Safe::new(SafeConfig::paper()).method_name(), "SAFE");
        assert_eq!(Safe::new(SafeConfig::rand_baseline(0)).method_name(), "RAND");
        assert_eq!(Safe::new(SafeConfig::imp_baseline(0)).method_name(), "IMP");
    }
}
