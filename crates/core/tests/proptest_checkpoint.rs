//! Property suite for the `SAFECKPT 1` checkpoint codec: arbitrary
//! snapshots — NaN/infinite operator params, unicode feature names and
//! degradation reasons (including tabs, newlines, and backslashes), empty
//! iteration histories — must round-trip through `to_text`/`from_text`
//! exactly, re-serialize byte-identically, and fail closed on truncation.

use proptest::prelude::*;

use safe_core::checkpoint::{Checkpoint, ConfigFingerprint, Terminal};
use safe_core::plan::{FeaturePlan, PlanStep};
use safe_core::safe::{IterationReport, IterationStatus};
use safe_core::{SafeConfig, SelectionMode};
use safe_obs::{IterationTelemetry, RunReport, StageTelemetry, WarnRecord, Waterfall};

/// Closed degradation-stage vocabulary the codec persists.
const STAGES: [&str; 7] =
    ["mine", "generate", "staged-prune", "iv-filter", "redundancy", "rank", "select"];
const OPS: [&str; 4] = ["mul", "div", "add", "log"];
const TERMINALS: [Terminal; 5] = [
    Terminal::Running,
    Terminal::Converged,
    Terminal::Degraded,
    Terminal::Skipped,
    Terminal::ItersExhausted,
];

/// Unique feature names from a fuzzed unicode base: the suffix guarantees
/// uniqueness, the base exercises multi-byte UTF-8 in every codec line that
/// carries names (plan INPUT/STEP/OUT, SELECTED, BINKEY).
fn names(base: &str, n: usize, tag: &str) -> Vec<String> {
    (0..n).map(|i| format!("{base}{tag}{i}")).collect()
}

/// A structurally valid plan over the given inputs: each step derives from
/// two inputs; outputs mix originals and generated features.
fn make_plan(inputs: &[String], params: &[f64], n_steps: usize) -> FeaturePlan {
    let steps: Vec<PlanStep> = (0..n_steps)
        .map(|j| PlanStep {
            name: format!("g{j}·{}", inputs[j % inputs.len()]),
            op: OPS[j % OPS.len()].to_string(),
            parents: vec![
                inputs[j % inputs.len()].clone(),
                inputs[(j + 1) % inputs.len()].clone(),
            ],
            params: params.to_vec(),
        })
        .collect();
    let mut outputs = vec![inputs[0].clone()];
    outputs.extend(steps.iter().map(|s| s.name.clone()));
    FeaturePlan {
        input_names: inputs.to_vec(),
        steps,
        outputs,
    }
}

fn make_report(n_iters: usize, warn_message: &str) -> RunReport {
    RunReport {
        total_us: 987,
        setup: vec![StageTelemetry {
            stage: "audit".into(),
            micros: 11,
            features_in: 4,
            features_out: 4,
            counters: vec![("findings".into(), 1)],
        }],
        iterations: (0..n_iters)
            .map(|i| IterationTelemetry {
                iteration: i,
                status: "completed".into(),
                micros: 500 + i as u64,
                stages: vec![StageTelemetry {
                    stage: "iv-filter".into(),
                    micros: 20,
                    features_in: 9,
                    features_out: 7,
                    counters: vec![("dropped_alpha".into(), 2)],
                }],
                waterfall: Waterfall {
                    generated: 4,
                    candidates: 9,
                    post_iv: 7,
                    post_redundancy: 6,
                    selected: 6,
                },
            })
            .collect(),
        warnings: vec![WarnRecord {
            stage: "audit".into(),
            iteration: None,
            code: "finding".into(),
            message: warn_message.to_string(),
        }],
        metrics: Default::default(),
    }
}

/// Build a structurally consistent snapshot from fuzzed primitives.
#[allow(clippy::too_many_arguments)]
fn make_checkpoint(
    base: &str,
    reason: &str,
    params: &[f64],
    seed: u64,
    n_iters: usize,
    n_inputs: usize,
    n_steps: usize,
    terminal_idx: usize,
    degrade_idx: usize,
) -> Checkpoint {
    let inputs = names(base, n_inputs.max(1), "·in");
    let plan = make_plan(&inputs, params, n_steps);
    let history: Vec<IterationReport> = (0..n_iters)
        .map(|i| IterationReport {
            iteration: i,
            n_combinations: 6 + i,
            n_combinations_kept: 4,
            n_generated: plan.steps.len(),
            n_candidates: plan.outputs.len() + 2,
            n_after_iv: plan.outputs.len() + 1,
            n_after_redundancy: plan.outputs.len(),
            n_selected: plan.outputs.len(),
            selected: plan.outputs.clone(),
            elapsed_us: 900 + i as u64,
            status: if i % 3 == 1 {
                IterationStatus::Degraded {
                    stage: STAGES[degrade_idx % STAGES.len()],
                    reason: reason.to_string(),
                }
            } else if i % 3 == 2 {
                IterationStatus::Skipped { reason: reason.to_string() }
            } else {
                IterationStatus::Completed
            },
        })
        .collect();
    // Both selection modes must persist and round-trip (the mode is a
    // result-determining fingerprint field); derive it from the fuzzed seed.
    let selection = if seed % 2 == 0 { SelectionMode::Exact } else { SelectionMode::Staged };
    let config = SafeConfig { seed, selection, ..SafeConfig::paper() };
    Checkpoint {
        fingerprint: ConfigFingerprint::of(&config),
        iterations_done: n_iters,
        terminal: TERMINALS[terminal_idx % TERMINALS.len()],
        elapsed_us: 31_415,
        history,
        plans: (0..n_iters).map(|_| plan.clone()).collect(),
        report: make_report(n_iters, reason),
        bin_keys: inputs.iter().map(|n| (n.clone(), 255)).collect(),
        iv_entries: 9,
        pearson_entries: 21,
    }
}

/// Plan equality under IEEE bit semantics: `params` may hold NaN, which
/// `PartialEq` treats as unequal to itself, so compare `to_bits`.
fn plans_bit_eq(a: &[FeaturePlan], b: &[FeaturePlan]) -> bool {
    a.len() == b.len()
        && a.iter().zip(b).all(|(x, y)| {
            x.input_names == y.input_names
                && x.outputs == y.outputs
                && x.steps.len() == y.steps.len()
                && x.steps.iter().zip(&y.steps).all(|(s, t)| {
                    s.name == t.name
                        && s.op == t.op
                        && s.parents == t.parents
                        && s.params.len() == t.params.len()
                        && s.params
                            .iter()
                            .zip(&t.params)
                            .all(|(p, q)| p.to_bits() == q.to_bits())
                })
        })
}

fn assert_round_trip(ckpt: &Checkpoint) {
    let text = ckpt.to_text();
    let parsed = Checkpoint::from_text(&text).unwrap_or_else(|e| panic!("parse failed: {e}"));
    assert!(parsed.fingerprint.matches(&ckpt.fingerprint));
    assert_eq!(parsed.iterations_done, ckpt.iterations_done);
    assert_eq!(parsed.terminal, ckpt.terminal);
    assert_eq!(parsed.elapsed_us, ckpt.elapsed_us);
    assert_eq!(parsed.history.len(), ckpt.history.len());
    for (x, y) in parsed.history.iter().zip(&ckpt.history) {
        assert!(x.structural_eq(y), "{x:?}\nvs\n{y:?}");
        assert_eq!(x.elapsed_us, y.elapsed_us);
    }
    assert!(plans_bit_eq(&parsed.plans, &ckpt.plans));
    assert_eq!(parsed.report, ckpt.report);
    assert_eq!(parsed.bin_keys, ckpt.bin_keys);
    assert_eq!(parsed.iv_entries, ckpt.iv_entries);
    assert_eq!(parsed.pearson_entries, ckpt.pearson_entries);
    // Re-serialization is byte-identical (the checksum line depends on it).
    assert_eq!(parsed.to_text(), text);
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Arbitrary snapshots round-trip exactly: unicode names, fuzzed
    /// degradation reasons, NaN/±inf operator params, every terminal
    /// marker, histories from empty to several iterations.
    #[test]
    fn arbitrary_checkpoints_round_trip(
        base in "[a-zμλ中é→ ]{1,6}",
        reason in "\\PC{0,24}",
        raw_params in prop::collection::vec(-1e300f64..1e300, 0..4),
        nan_mask in 0u64..16,
        seed in any::<u64>(),
        n_iters in 0usize..4,
        n_inputs in 1usize..4,
        n_steps in 0usize..4,
        terminal_idx in 0usize..5,
        degrade_idx in 0usize..7,
    ) {
        // Inject the IEEE special values the codec must carry bit-exactly.
        let mut params = raw_params;
        for (i, p) in params.iter_mut().enumerate() {
            match (nan_mask >> (2 * i)) & 3 {
                1 => *p = f64::NAN,
                2 => *p = f64::INFINITY,
                3 => *p = f64::NEG_INFINITY,
                _ => {}
            }
        }
        let ckpt = make_checkpoint(
            &base, &reason, &params, seed, n_iters, n_inputs, n_steps,
            terminal_idx, degrade_idx,
        );
        assert_round_trip(&ckpt);
    }

    /// Reason strings with the escape metacharacters themselves (tabs,
    /// newlines, CRs, backslashes) survive the line codec.
    #[test]
    fn hostile_reason_strings_round_trip(
        pieces in prop::collection::vec(prop_oneof![
            Just("\t".to_string()),
            Just("\n".to_string()),
            Just("\r".to_string()),
            Just("\\".to_string()),
            Just("\\t".to_string()),
            "\\PC{1,6}",
        ], 1..6),
        n_iters in 1usize..4,
    ) {
        let reason = pieces.concat();
        let ckpt = make_checkpoint(&reason.replace(['\t', '\n', '\r'], "·"), &reason,
            &[1.5], 7, n_iters, 2, 1, 0, 3);
        assert_round_trip(&ckpt);
    }

    /// Every strict prefix of a serialized snapshot fails closed — a
    /// checksum or parse error, never a panic and never an `Ok`.
    #[test]
    fn truncated_snapshots_fail_closed(
        cut_ppm in 0u32..1_000_000,
        seed in any::<u64>(),
    ) {
        let ckpt = make_checkpoint("基ζ", "torn½", &[f64::NAN], seed, 2, 2, 2, 0, 1);
        let text = ckpt.to_text();
        let mut k = (text.len() as u64 * cut_ppm as u64 / 1_000_000) as usize;
        while !text.is_char_boundary(k) {
            k -= 1;
        }
        prop_assume!(k < text.len());
        prop_assert!(Checkpoint::from_text(&text[..k]).is_err());
    }
}

/// The explicitly-required empty-history case, pinned outside the fuzz loop.
#[test]
fn empty_history_snapshot_round_trips() {
    let ckpt = make_checkpoint("cold·start", "", &[], 0, 0, 1, 0, 0, 0);
    assert!(ckpt.history.is_empty());
    assert!(ckpt.plans.is_empty());
    assert_round_trip(&ckpt);
}
