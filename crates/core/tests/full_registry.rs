//! SAFE end-to-end with the *full* operator registry (unary + binary +
//! ternary, stateful and supervised operators included) — exercises the
//! paths the paper-default arithmetic configuration never touches.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use safe_core::{Safe, SafeConfig};
use safe_data::dataset::Dataset;
use safe_ops::registry::OperatorRegistry;

fn dataset(n: usize, seed: u64) -> Dataset {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut cols = vec![Vec::with_capacity(n); 6];
    let mut labels = Vec::with_capacity(n);
    for _ in 0..n {
        let a: f64 = rng.gen_range(0.1..4.0); // positive: log/sqrt friendly
        let b: f64 = rng.gen_range(0.1..4.0);
        let c: f64 = rng.gen_range(-1.0..1.0);
        let flag: f64 = f64::from(rng.gen_bool(0.5));
        cols[0].push(a);
        cols[1].push(b);
        cols[2].push(c);
        cols[3].push(flag);
        cols[4].push(rng.gen_range(-1.0..1.0));
        cols[5].push(rng.gen_range(-1.0..1.0));
        let score = (a / b).ln() + 0.5 * c + 0.8 * flag + rng.gen_range(-0.2..0.2);
        labels.push((score > 0.4) as u8);
    }
    Dataset::from_columns(
        vec!["amt".into(), "bal".into(), "c".into(), "flag".into(), "n1".into(), "n2".into()],
        cols,
        Some(labels),
    )
    .unwrap()
}

#[test]
fn safe_runs_with_the_standard_registry() {
    let train = dataset(1_500, 1);
    let config = SafeConfig {
        operators: OperatorRegistry::standard(),
        gamma: 12,
        seed: 1,
        ..SafeConfig::paper()
    };
    let outcome = Safe::new(config).fit(&train, None).unwrap();
    assert!(!outcome.plan.outputs.is_empty());
    // The plan must apply and serialize despite stateful steps.
    let applied = outcome.plan.apply(&train).unwrap();
    assert_eq!(applied.n_rows(), train.n_rows());
    let text = outcome.plan.to_text();
    let back = safe_core::plan::FeaturePlan::from_text(&text).unwrap();
    // Plans may legitimately carry NaN params (e.g. an empty group's
    // aggregate), and NaN != NaN breaks PartialEq — compare the bit-exact
    // codec output instead.
    assert_eq!(back.to_text(), text);
}

#[test]
fn stateful_steps_carry_parameters() {
    let train = dataset(1_200, 2);
    let config = SafeConfig {
        operators: OperatorRegistry::standard(),
        gamma: 15,
        seed: 2,
        ..SafeConfig::paper()
    };
    let outcome = Safe::new(config).fit(&train, None).unwrap();
    // If any stateful operator made it into the plan, its params must be
    // non-empty and must round-trip through text.
    let stateful = [
        "minmax", "zscore", "disc_width", "disc_freq", "disc_chimerge",
        "group_then_max", "group_then_min", "group_then_avg",
        "group_then_stdev", "group_then_count", "ridge_pred", "ridge_res",
    ];
    for step in &outcome.plan.steps {
        if stateful.contains(&step.op.as_str()) {
            assert!(
                !step.params.is_empty(),
                "{} should carry fitted parameters",
                step.op
            );
        }
    }
    let back = safe_core::plan::FeaturePlan::from_text(&outcome.plan.to_text()).unwrap();
    for (a, b) in outcome.plan.steps.iter().zip(&back.steps) {
        assert_eq!(a.params.len(), b.params.len());
        for (x, y) in a.params.iter().zip(&b.params) {
            assert_eq!(x.to_bits(), y.to_bits(), "lossless param round trip");
        }
    }
}

#[test]
fn plan_replay_on_unseen_data_is_consistent_rowwise() {
    let train = dataset(1_000, 3);
    let unseen = dataset(300, 4);
    let config = SafeConfig {
        operators: OperatorRegistry::standard(),
        gamma: 10,
        seed: 3,
        ..SafeConfig::paper()
    };
    let outcome = Safe::new(config).fit(&train, None).unwrap();
    let compiled = outcome
        .plan
        .compile(&OperatorRegistry::standard())
        .unwrap();
    let batch = compiled.apply(&unseen).unwrap();
    for i in 0..unseen.n_rows() {
        let row = compiled.apply_row(&unseen.row(i)).unwrap();
        for (c, &v) in row.iter().enumerate() {
            let b = batch.column(c).unwrap()[i];
            assert!(
                v == b || (v.is_nan() && b.is_nan()),
                "row {i} col {c}: {v} vs {b}"
            );
        }
    }
}

#[test]
fn unary_only_registry_generates_unary_features() {
    let train = dataset(800, 5);
    let mut unary = OperatorRegistry::empty();
    // Borrow a few unary operators from the standard set.
    let std_reg = OperatorRegistry::standard();
    for name in ["log", "square", "zscore"] {
        unary.register(std_reg.get(name).unwrap().clone());
    }
    let config = SafeConfig {
        operators: unary,
        gamma: 10,
        seed: 5,
        ..SafeConfig::paper()
    };
    let outcome = Safe::new(config).fit(&train, None).unwrap();
    for step in &outcome.plan.steps {
        assert_eq!(step.parents.len(), 1, "only unary steps possible");
    }
}

#[test]
fn iteration_reports_expose_elapsed_time() {
    let train = dataset(600, 6);
    let outcome = Safe::new(SafeConfig { seed: 6, ..SafeConfig::paper() })
        .fit(&train, None)
        .unwrap();
    for r in &outcome.history {
        assert!(r.elapsed_us > 0);
    }
}
