//! End-to-end telemetry: real SAFE fits observed through a `MemorySink`.
//!
//! Proves the four contracts the telemetry layer makes:
//! 1. span events balance and nest properly,
//! 2. every completed iteration reports the full core stage set and an
//!    internally consistent feature waterfall,
//! 3. counters are deterministic for a fixed seed,
//! 4. telemetry never changes pipeline results (NullSink vs MemorySink),
//!    and the inline report matches one reassembled from the event stream.

use std::sync::Arc;

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use safe_core::safe::SafeOutcome;
use safe_core::{Safe, SafeConfig};
use safe_data::dataset::Dataset;
use safe_obs::{
    stages, EventKind, LatencyHisto, MemorySink, MetricsSnapshot, RunReport, SinkHandle,
};

/// Label depends on the product of two features — SAFE finds an (a,b)
/// combination and completes its iterations.
fn dataset(n: usize, seed: u64) -> Dataset {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut cols: Vec<Vec<f64>> = (0..4).map(|_| Vec::with_capacity(n)).collect();
    let mut labels = Vec::with_capacity(n);
    for _ in 0..n {
        let a: f64 = rng.gen_range(-1.0..1.0);
        let b: f64 = rng.gen_range(-1.0..1.0);
        cols[0].push(a);
        cols[1].push(b);
        cols[2].push(rng.gen_range(-1.0..1.0));
        cols[3].push(rng.gen_range(-1.0..1.0));
        labels.push((a * b > 0.0) as u8);
    }
    Dataset::from_columns(
        vec!["a".into(), "b".into(), "n1".into(), "n2".into()],
        cols,
        Some(labels),
    )
    .unwrap()
}

fn fit_with(sink: SinkHandle, n_iterations: usize) -> SafeOutcome {
    let train = dataset(800, 7);
    let config = SafeConfig {
        sink,
        seed: 7,
        gamma: 10,
        n_iterations,
        ..SafeConfig::paper()
    };
    Safe::new(config).fit(&train, None).unwrap()
}

#[test]
fn spans_balance_and_nest() {
    let sink = Arc::new(MemorySink::new());
    let _ = fit_with(SinkHandle::new(sink.clone()), 2);
    let events = sink.events();
    assert!(!events.is_empty());

    let mut stack: Vec<&str> = Vec::new();
    for e in &events {
        match e.kind {
            EventKind::StageStart => stack.push(&e.stage),
            EventKind::StageEnd => {
                let open = stack.pop().unwrap_or_else(|| {
                    panic!("stage_end '{}' with no open span", e.stage)
                });
                assert_eq!(open, e.stage, "spans must close LIFO");
            }
            _ => {}
        }
    }
    assert!(stack.is_empty(), "unclosed spans: {stack:?}");

    // Timestamps are monotone within the stream.
    assert!(events.windows(2).all(|w| w[0].ts_us <= w[1].ts_us));
}

#[test]
fn completed_iterations_carry_full_stage_set() {
    let sink = Arc::new(MemorySink::new());
    let outcome = fit_with(SinkHandle::new(sink.clone()), 2);

    let completed: Vec<_> = outcome
        .report
        .iterations
        .iter()
        .filter(|it| it.status == "completed")
        .collect();
    assert!(!completed.is_empty(), "fixture must complete at least one iteration");
    for it in completed {
        for want in stages::CORE {
            assert!(
                it.stage(want).is_some(),
                "iteration {} missing stage {want}",
                it.iteration
            );
        }
        assert!(
            it.waterfall.is_consistent(),
            "waterfall must be a funnel: {:?}",
            it.waterfall
        );
        assert_eq!(it.waterfall.selected, outcome.history[it.iteration].n_selected as u64);
        // The iteration span covers its stages.
        let stage_sum: u64 = it.stages.iter().map(|s| s.micros).sum();
        assert!(it.micros >= stage_sum, "iteration span shorter than its stages");
    }
    // One history entry per report iteration, statuses agree.
    assert_eq!(outcome.report.iterations.len(), outcome.history.len());
}

/// Everything in a report except wall-clock timings, for equality checks.
fn deterministic_view(report: &RunReport) -> String {
    let mut out = String::new();
    for it in &report.iterations {
        out.push_str(&format!(
            "iter {} {} waterfall={:?}\n",
            it.iteration, it.status, it.waterfall
        ));
        for s in &it.stages {
            out.push_str(&format!(
                "  {} in={} out={} counters={:?}\n",
                s.stage, s.features_in, s.features_out, s.counters
            ));
        }
    }
    out
}

#[test]
fn counters_deterministic_for_fixed_seed() {
    let a = fit_with(SinkHandle::new(Arc::new(MemorySink::new())), 2);
    let b = fit_with(SinkHandle::new(Arc::new(MemorySink::new())), 2);
    assert_eq!(deterministic_view(&a.report), deterministic_view(&b.report));
}

#[test]
fn null_sink_outcome_identical_to_instrumented_run() {
    let instrumented = fit_with(SinkHandle::new(Arc::new(MemorySink::new())), 2);
    let silent = fit_with(SinkHandle::null(), 2);

    // The learned plan is byte-identical.
    assert_eq!(silent.plan.to_text(), instrumented.plan.to_text());
    // Funnel history matches except for wall-clock.
    assert_eq!(silent.history.len(), instrumented.history.len());
    for (s, i) in silent.history.iter().zip(&instrumented.history) {
        assert_eq!(s.iteration, i.iteration);
        assert_eq!(s.n_combinations, i.n_combinations);
        assert_eq!(s.n_generated, i.n_generated);
        assert_eq!(s.n_after_iv, i.n_after_iv);
        assert_eq!(s.n_after_redundancy, i.n_after_redundancy);
        assert_eq!(s.n_selected, i.n_selected);
        assert_eq!(s.selected, i.selected);
    }
    // The report is assembled either way, with identical content.
    assert_eq!(
        deterministic_view(&silent.report),
        deterministic_view(&instrumented.report)
    );
}

#[test]
fn report_from_events_matches_inline_assembly() {
    let sink = Arc::new(MemorySink::new());
    let outcome = fit_with(SinkHandle::new(sink.clone()), 2);
    let replayed = RunReport::from_events(&sink.events());

    assert_eq!(replayed.iterations.len(), outcome.report.iterations.len());
    for (r, i) in replayed.iterations.iter().zip(&outcome.report.iterations) {
        assert_eq!(r.iteration, i.iteration);
        assert_eq!(r.status, i.status);
        assert_eq!(r.waterfall, i.waterfall);
        assert_eq!(r.stages.len(), i.stages.len(), "iteration {}", i.iteration);
        for (x, y) in r.stages.iter().zip(&i.stages) {
            assert_eq!(x.stage, y.stage);
            assert_eq!(x.features_in, y.features_in);
            assert_eq!(x.features_out, y.features_out);
            assert_eq!(x.counters, y.counters, "stage {}", y.stage);
            assert_eq!(x.micros, y.micros, "stage {}", y.stage);
        }
    }
    assert_eq!(replayed.setup.len(), outcome.report.setup.len());
    assert_eq!(replayed.warnings, outcome.report.warnings);
}

/// The metrics layer's acceptance contract: latency *values* are
/// wall-clock and vary run to run, but everything structural about the
/// histograms is deterministic — observation counts don't depend on the
/// worker budget, and sharding one run's real latency stream across any
/// number of "threads" then merging in any order yields bit-identical
/// quantiles.
#[test]
fn stage_latency_quantiles_bit_identical_across_thread_counts() {
    let mut counts = Vec::new();
    for threads in [1usize, 4] {
        let sink = Arc::new(MemorySink::new());
        let train = dataset(800, 7);
        let config = SafeConfig {
            sink: SinkHandle::new(sink.clone()),
            seed: 7,
            gamma: 10,
            n_iterations: 2,
            ..SafeConfig::paper()
        }
        .with_threads(threads);
        let outcome = Safe::new(config).fit(&train, None).unwrap();

        let gbm_histo = outcome
            .report
            .metrics
            .histogram("stage_us", &[("stage", stages::GBM_TRAIN)])
            .expect("report must carry the gbm-train latency histogram");
        let iter_histo = outcome
            .report
            .metrics
            .histogram("iteration_us", &[])
            .expect("report must carry the iteration latency histogram");
        assert_eq!(iter_histo.count(), outcome.report.iterations.len() as u64);
        counts.push((gbm_histo.count(), iter_histo.count()));

        // Shard this run's real per-round gbm latency stream 4 ways and
        // merge in reverse order: bit-identical to serial recording.
        let values: Vec<u64> = sink
            .events()
            .iter()
            .filter(|e| e.kind == EventKind::Observe && e.name == "gbm_round_us")
            .map(|e| e.value)
            .collect();
        assert!(!values.is_empty(), "fit must observe per-round gbm latencies");
        let mut serial = LatencyHisto::new();
        for &v in &values {
            serial.record(v);
        }
        let mut shards = vec![LatencyHisto::new(); 4];
        for (i, &v) in values.iter().enumerate() {
            shards[i % 4].record(v);
        }
        let mut merged = LatencyHisto::new();
        for s in shards.iter().rev() {
            merged.merge(s);
        }
        assert_eq!(merged, serial, "sharded merge must be exact");
        assert_eq!(
            (merged.p50(), merged.p95(), merged.p99()),
            (serial.p50(), serial.p95(), serial.p99()),
            "quantiles must be bit-identical under any merge order"
        );
    }
    assert_eq!(counts[0], counts[1], "observation counts must not depend on threads");
}

/// Sink-only invariant (PR 6 extended by PR 7): `observe` events — per-round
/// GBM timings, histogram-build timings, checkpoint write latency — exist in
/// the event stream and the metrics snapshot, but never become stage
/// counters in the report, so resumed and uninterrupted reports still
/// compare equal.
#[test]
fn observe_events_are_sink_only_and_survive_kill_resume() {
    let train = dataset(800, 7);
    let ckpt_dir =
        std::env::temp_dir().join(format!("safe_telemetry_ckpt_{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&ckpt_dir);
    std::fs::create_dir_all(&ckpt_dir).unwrap();

    let sink = Arc::new(MemorySink::new());
    let config = SafeConfig {
        sink: SinkHandle::new(sink.clone()),
        seed: 7,
        gamma: 10,
        n_iterations: 2,
        checkpoint_dir: Some(ckpt_dir.clone()),
        ..SafeConfig::paper()
    };
    let baseline = Safe::new(config.clone()).fit(&train, None).unwrap();

    // Observe events exist for the round timings and the checkpoint write.
    let events = sink.events();
    for name in ["gbm_round_us", "gbm_hist_build_us", "ckpt_write_us"] {
        assert!(
            events.iter().any(|e| e.kind == EventKind::Observe && e.name == name),
            "missing observe events for {name}"
        );
    }
    // They land in the snapshot assembled from events...
    let snapshot = MetricsSnapshot::from_events(&events);
    assert!(snapshot
        .histogram("ckpt_write_us", &[("stage", stages::CHECKPOINT)])
        .is_some());
    // ...but never become stage counters in the report.
    for it in &baseline.report.iterations {
        for st in &it.stages {
            for name in ["gbm_round_us", "gbm_hist_build_us", "ckpt_write_us"] {
                assert!(
                    st.counter(name).is_none(),
                    "observe '{name}' leaked into stage counters of {}",
                    st.stage
                );
            }
        }
    }

    // Crash simulation: only the first snapshot survives; resume must
    // rebuild the identical plan and a structurally identical report.
    let mut snapshots: Vec<std::path::PathBuf> = std::fs::read_dir(&ckpt_dir)
        .unwrap()
        .map(|e| e.unwrap().path())
        .collect();
    snapshots.sort();
    assert!(!snapshots.is_empty());
    for late in &snapshots[1..] {
        std::fs::remove_file(late).unwrap();
    }
    let resumed = Safe::new(config).fit_resumed(&train, None).unwrap();
    assert_eq!(resumed.plan.to_text(), baseline.plan.to_text());
    assert!(
        resumed.report.structural_eq(&baseline.report),
        "resumed report must be structurally identical"
    );
    // The resumed run's registry is fresh (covers only the post-resume
    // segment) yet still produces latency histograms.
    assert!(!resumed.report.metrics.is_empty());
    std::fs::remove_dir_all(&ckpt_dir).ok();
}

/// A NullSink run still records builder-side latency histograms (the report
/// carries wall-clock spans anyway), and stays structurally identical to an
/// instrumented run — histograms never perturb the pipeline.
#[test]
fn null_sink_run_structural_eq_and_still_has_histograms() {
    let instrumented = fit_with(SinkHandle::new(Arc::new(MemorySink::new())), 2);
    let silent = fit_with(SinkHandle::null(), 2);
    assert!(silent.report.structural_eq(&instrumented.report));
    assert!(
        silent
            .report
            .metrics
            .histogram("stage_us", &[("stage", stages::GBM_TRAIN)])
            .is_some(),
        "builder-side histograms must record even with the NullSink"
    );
}

/// Acceptance: a Chrome-trace export of a full (scaled) `gina` run — the
/// paper's 970-feature benchmark — round-trips through the validator and
/// contains the pipeline spans.
#[test]
fn gina_run_chrome_trace_round_trips_through_validator() {
    use safe_datagen::benchmarks::{generate_benchmark_scaled, BenchmarkId};
    let split = generate_benchmark_scaled(BenchmarkId::Gina, 0.05, 7);
    let sink = Arc::new(MemorySink::new());
    let config = SafeConfig {
        sink: SinkHandle::new(sink.clone()),
        seed: 7,
        gamma: 10,
        n_iterations: 1,
        ..SafeConfig::paper()
    };
    let _ = Safe::new(config).fit(&split.train, None).unwrap();

    let trace = safe_obs::chrome_trace_json(&sink.events());
    let summary = safe_obs::validate_chrome_trace(&trace).expect("gina trace must validate");
    assert!(summary.spans > 0, "{summary:?}");
    assert!(summary.events >= summary.spans);

    // The folded-stack export of the same stream nests stages under their
    // iteration frame.
    let folded = safe_obs::folded_stacks(&sink.events());
    assert!(
        folded.lines().any(|l| l.starts_with("iteration;")),
        "folded stacks must nest stages: {folded}"
    );
}

#[test]
fn degraded_iteration_emits_warn_and_balances() {
    let sink = Arc::new(MemorySink::new());
    let train = dataset(600, 3);
    let config = SafeConfig {
        sink: SinkHandle::new(sink.clone()),
        seed: 3,
        gamma: 8,
        // An absurd IV threshold empties the filter: the iteration degrades.
        alpha: 1.0e9,
        ..SafeConfig::paper()
    };
    let outcome = Safe::new(config).fit(&train, None).unwrap();
    assert!(outcome
        .report
        .warnings
        .iter()
        .any(|w| w.code == "degraded"), "warnings: {:?}", outcome.report.warnings);

    let events = sink.events();
    assert!(events.iter().any(|e| e.kind == EventKind::Warn));
    let starts = events.iter().filter(|e| e.kind == EventKind::StageStart).count();
    let ends = events.iter().filter(|e| e.kind == EventKind::StageEnd).count();
    assert_eq!(starts, ends, "degraded run must still balance its spans");
}
