//! End-to-end telemetry: real SAFE fits observed through a `MemorySink`.
//!
//! Proves the four contracts the telemetry layer makes:
//! 1. span events balance and nest properly,
//! 2. every completed iteration reports the full core stage set and an
//!    internally consistent feature waterfall,
//! 3. counters are deterministic for a fixed seed,
//! 4. telemetry never changes pipeline results (NullSink vs MemorySink),
//!    and the inline report matches one reassembled from the event stream.

use std::sync::Arc;

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use safe_core::safe::SafeOutcome;
use safe_core::{Safe, SafeConfig};
use safe_data::dataset::Dataset;
use safe_obs::{stages, EventKind, MemorySink, RunReport, SinkHandle};

/// Label depends on the product of two features — SAFE finds an (a,b)
/// combination and completes its iterations.
fn dataset(n: usize, seed: u64) -> Dataset {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut cols: Vec<Vec<f64>> = (0..4).map(|_| Vec::with_capacity(n)).collect();
    let mut labels = Vec::with_capacity(n);
    for _ in 0..n {
        let a: f64 = rng.gen_range(-1.0..1.0);
        let b: f64 = rng.gen_range(-1.0..1.0);
        cols[0].push(a);
        cols[1].push(b);
        cols[2].push(rng.gen_range(-1.0..1.0));
        cols[3].push(rng.gen_range(-1.0..1.0));
        labels.push((a * b > 0.0) as u8);
    }
    Dataset::from_columns(
        vec!["a".into(), "b".into(), "n1".into(), "n2".into()],
        cols,
        Some(labels),
    )
    .unwrap()
}

fn fit_with(sink: SinkHandle, n_iterations: usize) -> SafeOutcome {
    let train = dataset(800, 7);
    let config = SafeConfig {
        sink,
        seed: 7,
        gamma: 10,
        n_iterations,
        ..SafeConfig::paper()
    };
    Safe::new(config).fit(&train, None).unwrap()
}

#[test]
fn spans_balance_and_nest() {
    let sink = Arc::new(MemorySink::new());
    let _ = fit_with(SinkHandle::new(sink.clone()), 2);
    let events = sink.events();
    assert!(!events.is_empty());

    let mut stack: Vec<&str> = Vec::new();
    for e in &events {
        match e.kind {
            EventKind::StageStart => stack.push(&e.stage),
            EventKind::StageEnd => {
                let open = stack.pop().unwrap_or_else(|| {
                    panic!("stage_end '{}' with no open span", e.stage)
                });
                assert_eq!(open, e.stage, "spans must close LIFO");
            }
            _ => {}
        }
    }
    assert!(stack.is_empty(), "unclosed spans: {stack:?}");

    // Timestamps are monotone within the stream.
    assert!(events.windows(2).all(|w| w[0].ts_us <= w[1].ts_us));
}

#[test]
fn completed_iterations_carry_full_stage_set() {
    let sink = Arc::new(MemorySink::new());
    let outcome = fit_with(SinkHandle::new(sink.clone()), 2);

    let completed: Vec<_> = outcome
        .report
        .iterations
        .iter()
        .filter(|it| it.status == "completed")
        .collect();
    assert!(!completed.is_empty(), "fixture must complete at least one iteration");
    for it in completed {
        for want in stages::CORE {
            assert!(
                it.stage(want).is_some(),
                "iteration {} missing stage {want}",
                it.iteration
            );
        }
        assert!(
            it.waterfall.is_consistent(),
            "waterfall must be a funnel: {:?}",
            it.waterfall
        );
        assert_eq!(it.waterfall.selected, outcome.history[it.iteration].n_selected as u64);
        // The iteration span covers its stages.
        let stage_sum: u64 = it.stages.iter().map(|s| s.micros).sum();
        assert!(it.micros >= stage_sum, "iteration span shorter than its stages");
    }
    // One history entry per report iteration, statuses agree.
    assert_eq!(outcome.report.iterations.len(), outcome.history.len());
}

/// Everything in a report except wall-clock timings, for equality checks.
fn deterministic_view(report: &RunReport) -> String {
    let mut out = String::new();
    for it in &report.iterations {
        out.push_str(&format!(
            "iter {} {} waterfall={:?}\n",
            it.iteration, it.status, it.waterfall
        ));
        for s in &it.stages {
            out.push_str(&format!(
                "  {} in={} out={} counters={:?}\n",
                s.stage, s.features_in, s.features_out, s.counters
            ));
        }
    }
    out
}

#[test]
fn counters_deterministic_for_fixed_seed() {
    let a = fit_with(SinkHandle::new(Arc::new(MemorySink::new())), 2);
    let b = fit_with(SinkHandle::new(Arc::new(MemorySink::new())), 2);
    assert_eq!(deterministic_view(&a.report), deterministic_view(&b.report));
}

#[test]
fn null_sink_outcome_identical_to_instrumented_run() {
    let instrumented = fit_with(SinkHandle::new(Arc::new(MemorySink::new())), 2);
    let silent = fit_with(SinkHandle::null(), 2);

    // The learned plan is byte-identical.
    assert_eq!(silent.plan.to_text(), instrumented.plan.to_text());
    // Funnel history matches except for wall-clock.
    assert_eq!(silent.history.len(), instrumented.history.len());
    for (s, i) in silent.history.iter().zip(&instrumented.history) {
        assert_eq!(s.iteration, i.iteration);
        assert_eq!(s.n_combinations, i.n_combinations);
        assert_eq!(s.n_generated, i.n_generated);
        assert_eq!(s.n_after_iv, i.n_after_iv);
        assert_eq!(s.n_after_redundancy, i.n_after_redundancy);
        assert_eq!(s.n_selected, i.n_selected);
        assert_eq!(s.selected, i.selected);
    }
    // The report is assembled either way, with identical content.
    assert_eq!(
        deterministic_view(&silent.report),
        deterministic_view(&instrumented.report)
    );
}

#[test]
fn report_from_events_matches_inline_assembly() {
    let sink = Arc::new(MemorySink::new());
    let outcome = fit_with(SinkHandle::new(sink.clone()), 2);
    let replayed = RunReport::from_events(&sink.events());

    assert_eq!(replayed.iterations.len(), outcome.report.iterations.len());
    for (r, i) in replayed.iterations.iter().zip(&outcome.report.iterations) {
        assert_eq!(r.iteration, i.iteration);
        assert_eq!(r.status, i.status);
        assert_eq!(r.waterfall, i.waterfall);
        assert_eq!(r.stages.len(), i.stages.len(), "iteration {}", i.iteration);
        for (x, y) in r.stages.iter().zip(&i.stages) {
            assert_eq!(x.stage, y.stage);
            assert_eq!(x.features_in, y.features_in);
            assert_eq!(x.features_out, y.features_out);
            assert_eq!(x.counters, y.counters, "stage {}", y.stage);
            assert_eq!(x.micros, y.micros, "stage {}", y.stage);
        }
    }
    assert_eq!(replayed.setup.len(), outcome.report.setup.len());
    assert_eq!(replayed.warnings, outcome.report.warnings);
}

#[test]
fn degraded_iteration_emits_warn_and_balances() {
    let sink = Arc::new(MemorySink::new());
    let train = dataset(600, 3);
    let config = SafeConfig {
        sink: SinkHandle::new(sink.clone()),
        seed: 3,
        gamma: 8,
        // An absurd IV threshold empties the filter: the iteration degrades.
        alpha: 1.0e9,
        ..SafeConfig::paper()
    };
    let outcome = Safe::new(config).fit(&train, None).unwrap();
    assert!(outcome
        .report
        .warnings
        .iter()
        .any(|w| w.code == "degraded"), "warnings: {:?}", outcome.report.warnings);

    let events = sink.events();
    assert!(events.iter().any(|e| e.kind == EventKind::Warn));
    let starts = events.iter().filter(|e| e.kind == EventKind::StageStart).count();
    let ends = events.iter().filter(|e| e.kind == EventKind::StageEnd).count();
    assert_eq!(starts, ends, "degraded run must still balance its spans");
}
