//! Property suite for the successive-halving pruner
//! (`safe_core::selection::staged`): fuzzed datasets and schedule knobs
//! must always produce nested, monotone-shrinking survivor sets, row
//! subsamples that are pure functions of `(seed, rung)`, finalists that
//! never depend on the thread budget, and short-circuits on pools already
//! at or under the target.

use proptest::prelude::*;

use safe_core::select::staged::{staged_prune, subsample_rows, StagedConfig};
use safe_data::dataset::Dataset;
use safe_stats::par::Parallelism;

/// Deterministic synthetic dataset: labeled, with per-column signal decay
/// and a seeded noise stream — enough structure that IV scores spread out
/// and cuts are non-trivial.
fn dataset(n_rows: usize, n_cols: usize, seed: u64) -> Dataset {
    let mut state = seed | 1;
    let mut next = move || {
        state ^= state << 13;
        state ^= state >> 7;
        state ^= state << 17;
        state
    };
    let labels: Vec<u8> = (0..n_rows).map(|_| (next() % 2) as u8).collect();
    let cols: Vec<Vec<f64>> = (0..n_cols)
        .map(|c| {
            (0..n_rows)
                .map(|i| {
                    let noise = (next() % 1000) as f64 / 1000.0;
                    f64::from(labels[i]) * (n_cols - c) as f64 / n_cols as f64
                        + noise * (c + 1) as f64
                })
                .collect()
        })
        .collect();
    let names = (0..n_cols).map(|c| format!("f{c}")).collect();
    Dataset::from_columns(names, cols, Some(labels)).unwrap()
}

fn knobs(base_rows: usize, target: usize, seed: u64) -> StagedConfig {
    StagedConfig { base_rows, finalist_target: target, beta: 10, seed }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Every rung's survivors are a subset of the previous rung's, the
    /// pool sizes never grow, the trace is internally consistent
    /// (`pool_out` = survivor count, `pool_in` chains), and the returned
    /// finalists are exactly the last rung's survivors.
    #[test]
    fn survivor_sets_shrink_monotonically_and_nest(
        n_rows in 60usize..240,
        n_cols in 12usize..48,
        data_seed in any::<u64>(),
        cfg_seed in any::<u64>(),
        base_rows in 16usize..128,
        target in 1usize..10,
    ) {
        let data = dataset(n_rows, n_cols, data_seed);
        let candidates: Vec<usize> = (0..n_cols).collect();
        let cfg = knobs(base_rows, target, cfg_seed);
        let (finalists, report) =
            staged_prune(&data, &candidates, &cfg, Parallelism::serial()).unwrap();
        prop_assert!(!report.short_circuited, "pool {n_cols} > target {target} must run rungs");
        let mut prev: Vec<usize> = candidates.clone();
        for (i, rung) in report.rungs.iter().enumerate() {
            prop_assert_eq!(rung.rung, i, "rung numbering");
            prop_assert_eq!(rung.pool_in, prev.len(), "pool_in chains from previous survivors");
            prop_assert_eq!(rung.pool_out, rung.survivors.len(), "pool_out consistency");
            prop_assert!(rung.pool_out <= rung.pool_in, "pool must never grow");
            prop_assert!(
                rung.survivors.iter().all(|s| prev.contains(s)),
                "rung {i} survivors must nest inside the previous pool"
            );
            prop_assert!(
                rung.survivors.windows(2).all(|w| w[0] < w[1]),
                "survivors sorted ascending, no duplicates"
            );
            prev = rung.survivors.clone();
        }
        prop_assert_eq!(&finalists, &prev, "finalists are the last rung's survivors");
        prop_assert!(finalists.len() <= n_cols);
        prop_assert_eq!(finalists.len(), target.max(1).min(n_cols), "halving reaches the target");
    }

    /// `subsample_rows` is a pure function of `(n_rows, sample, seed,
    /// rung)`: calling it twice agrees element-wise, the result is a
    /// duplicate-free in-range prefix of a permutation, different rungs
    /// decorrelate, and an over-large sample is the identity order.
    #[test]
    fn subsample_is_deterministic_per_seed_and_rung(
        n_rows in 2usize..500,
        sample in 1usize..300,
        seed in any::<u64>(),
        rung in 0usize..12,
    ) {
        let a = subsample_rows(n_rows, sample, seed, rung);
        let b = subsample_rows(n_rows, sample, seed, rung);
        prop_assert_eq!(&a, &b, "same (seed, rung) must reproduce the same rows");
        prop_assert_eq!(a.len(), sample.min(n_rows));
        let mut seen = vec![false; n_rows];
        for &r in &a {
            prop_assert!(r < n_rows, "row index out of range");
            prop_assert!(!seen[r], "duplicate row in subsample");
            seen[r] = true;
        }
        let full = subsample_rows(n_rows, n_rows + sample, seed, rung);
        prop_assert_eq!(full, (0..n_rows).collect::<Vec<_>>(), "sample >= n_rows is identity");
    }

    /// The finalist set and the full rung trace never depend on the thread
    /// budget — `try_par_map`'s fixed-order merge makes the cheap scores
    /// identical at every worker count.
    #[test]
    fn finalists_are_thread_independent(
        n_rows in 60usize..200,
        n_cols in 12usize..40,
        data_seed in any::<u64>(),
        cfg_seed in any::<u64>(),
        target in 1usize..8,
    ) {
        let data = dataset(n_rows, n_cols, data_seed);
        let candidates: Vec<usize> = (0..n_cols).collect();
        let cfg = knobs(32, target, cfg_seed);
        let (serial, serial_rep) =
            staged_prune(&data, &candidates, &cfg, Parallelism::serial()).unwrap();
        let (par4, par4_rep) =
            staged_prune(&data, &candidates, &cfg, Parallelism::new(4)).unwrap();
        prop_assert_eq!(&serial, &par4, "finalists differ between 1 and 4 threads");
        prop_assert_eq!(serial_rep.rungs.len(), par4_rep.rungs.len());
        for (s, p) in serial_rep.rungs.iter().zip(&par4_rep.rungs) {
            prop_assert_eq!(&s.survivors, &p.survivors, "rung {} survivors differ", s.rung);
            prop_assert_eq!(s.sample_rows, p.sample_rows);
        }
    }

    /// Pools already at or under the finalist target — including the
    /// trivial 1-candidate pool — short-circuit: no rungs, candidates
    /// returned unchanged (sorted ascending).
    #[test]
    fn small_pools_short_circuit(
        n_rows in 20usize..100,
        data_seed in any::<u64>(),
        cfg_seed in any::<u64>(),
        pool_size in 1usize..6,
    ) {
        let data = dataset(n_rows, 8, data_seed);
        let candidates: Vec<usize> = (0..pool_size).collect();
        let cfg = knobs(64, pool_size, cfg_seed); // pool == target
        let (finalists, report) =
            staged_prune(&data, &candidates, &cfg, Parallelism::serial()).unwrap();
        prop_assert!(report.short_circuited);
        prop_assert!(report.rungs.is_empty());
        prop_assert_eq!(finalists, candidates);
    }
}

/// The 1-candidate pool short-circuits even when the target is smaller
/// than the pool (target is clamped to at least 1).
#[test]
fn single_candidate_pool_short_circuits() {
    let data = dataset(50, 4, 7);
    let cfg = StagedConfig { base_rows: 16, finalist_target: 0, beta: 10, seed: 3 };
    let (finalists, report) =
        staged_prune(&data, &[2], &cfg, Parallelism::serial()).unwrap();
    assert!(report.short_circuited);
    assert!(report.rungs.is_empty());
    assert_eq!(finalists, vec![2]);
}
