//! Property tests for the serving codecs:
//!
//! 1. `FeaturePlan::from_text(to_text(p))` round-trips *structurally* for
//!    arbitrary valid plans — including NaN-payload params (compared by bit
//!    pattern, since NaN != NaN) and unicode feature names.
//! 2. A `SafeArtifact` text round trip preserves score bits on synthetic
//!    datasets, whatever the seed.

use proptest::prelude::*;

use safe_core::plan::{FeaturePlan, PlanStep};
use safe_data::dataset::Dataset;
use safe_gbm::GbmConfig;
use safe_ops::registry::OperatorRegistry;
use safe_serve::SafeArtifact;

/// Codec-safe name pools: ASCII, Greek/CJK, and emoji with spaces. Tabs and
/// newlines are the only reserved characters.
fn name(style: usize, role: &str, i: usize) -> String {
    match style % 3 {
        0 => format!("{role}{i}"),
        1 => format!("特徴-α{role}{i}"),
        _ => format!("f {role} {i} 🚀"),
    }
}

const OPS: [&str; 4] = ["add", "sub", "mul", "div"];

/// Build a valid plan from a flat random spec: every step references only
/// earlier definitions, so `validate()` always passes.
fn build_plan(
    n_inputs: usize,
    style: usize,
    steps_spec: &[(usize, usize, usize, Vec<u64>)],
    out_mask: u64,
) -> FeaturePlan {
    let input_names: Vec<String> = (0..n_inputs).map(|i| name(style, "in", i)).collect();
    let mut defined = input_names.clone();
    let mut steps = Vec::new();
    for (k, (op_idx, p1, p2, param_bits)) in steps_spec.iter().enumerate() {
        let step_name = name(style, "gen", k);
        let parents = vec![
            defined[p1 % defined.len()].clone(),
            defined[p2 % defined.len()].clone(),
        ];
        steps.push(PlanStep {
            name: step_name.clone(),
            op: OPS[op_idx % OPS.len()].to_string(),
            parents,
            params: param_bits.iter().map(|&b| f64::from_bits(b)).collect(),
        });
        defined.push(step_name);
    }
    let mut outputs: Vec<String> = defined
        .iter()
        .enumerate()
        .filter(|(i, _)| out_mask >> (i % 64) & 1 == 1)
        .map(|(_, n)| n.clone())
        .collect();
    if outputs.is_empty() {
        outputs.push(defined[0].clone());
    }
    FeaturePlan {
        input_names,
        steps,
        outputs,
    }
}

/// Structural equality with params compared by f64 bit pattern (NaN-safe).
fn structurally_equal(a: &FeaturePlan, b: &FeaturePlan) -> bool {
    a.input_names == b.input_names
        && a.outputs == b.outputs
        && a.steps.len() == b.steps.len()
        && a.steps.iter().zip(&b.steps).all(|(x, y)| {
            x.name == y.name
                && x.op == y.op
                && x.parents == y.parents
                && x.params.len() == y.params.len()
                && x.params
                    .iter()
                    .zip(&y.params)
                    .all(|(p, q)| p.to_bits() == q.to_bits())
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn plan_text_round_trips_structurally(
        n_inputs in 1usize..5,
        style in 0usize..3,
        steps_spec in prop::collection::vec(
            (0usize..4, 0usize..100, 0usize..100,
             prop::collection::vec(any::<u64>(), 0..4)),
            0..8,
        ),
        out_mask in any::<u64>(),
    ) {
        let plan = build_plan(n_inputs, style, &steps_spec, out_mask);
        prop_assert!(plan.validate().is_ok(), "generator must emit valid plans");
        let back = FeaturePlan::from_text(&plan.to_text());
        let back = match back {
            Ok(p) => p,
            Err(e) => return Err(TestCaseError::fail(format!("parse failed: {e}"))),
        };
        prop_assert!(
            structurally_equal(&plan, &back),
            "round trip altered the plan:\n{:#?}\nvs\n{:#?}", plan, back
        );
        // A second encode must be byte-stable.
        prop_assert_eq!(plan.to_text(), back.to_text());
    }
}

fn synthetic(seed: u64, n: usize) -> Dataset {
    let mut state = seed.wrapping_mul(0x9e3779b97f4a7c15) | 1;
    let mut next = move || {
        state = state
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        ((state >> 11) as f64) / ((1u64 << 53) as f64) * 2.0 - 1.0
    };
    let mut cols = vec![Vec::with_capacity(n); 3];
    let mut labels = Vec::with_capacity(n);
    for _ in 0..n {
        let (a, b, c) = (next(), next(), next());
        cols[0].push(a);
        cols[1].push(b);
        cols[2].push(c);
        labels.push(u8::from(a - 0.4 * b + 0.3 * c > 0.0));
    }
    Dataset::from_columns(
        vec!["a".into(), "b".into(), "c".into()],
        cols,
        Some(labels),
    )
    .expect("columns are rectangular")
}

proptest! {
    // Each case trains a small booster; keep the count modest.
    #![proptest_config(ProptestConfig::with_cases(8))]

    #[test]
    fn artifact_round_trip_preserves_score_bits(seed in 1u64..1_000_000) {
        let train = synthetic(seed, 200);
        let valid = synthetic(seed ^ 0xdead_beef, 90);
        let plan = build_plan(3, (seed % 3) as usize, &[(2, 0, 1, vec![]), (3, 0, 2, vec![])], u64::MAX);
        // Rename inputs to the synthetic schema.
        let plan = FeaturePlan {
            input_names: vec!["a".into(), "b".into(), "c".into()],
            steps: plan.steps.iter().enumerate().map(|(k, s)| PlanStep {
                name: format!("g{k}"),
                op: s.op.clone(),
                parents: vec!["a".into(), if k == 0 { "b".into() } else { "c".into() }],
                params: vec![],
            }).collect(),
            outputs: vec!["a".into(), "b".into(), "c".into(), "g0".into(), "g1".into()],
        };
        let config = GbmConfig { n_rounds: 6, ..GbmConfig::miner() };
        let artifact = SafeArtifact::train(
            &plan, &OperatorRegistry::standard(), &train, Some(&valid), &config,
        );
        let artifact = match artifact {
            Ok(a) => a,
            Err(e) => return Err(TestCaseError::fail(format!("train failed: {e}"))),
        };
        let back = match SafeArtifact::from_text(&artifact.to_text()) {
            Ok(a) => a,
            Err(e) => return Err(TestCaseError::fail(format!("parse failed: {e}"))),
        };
        let direct = artifact.model.predict(
            &artifact.plan.apply(&valid).expect("plan applies"));
        let replayed = back.model.predict(
            &back.plan.apply(&valid).expect("plan applies"));
        prop_assert_eq!(direct.len(), replayed.len());
        for (i, (x, y)) in direct.iter().zip(&replayed).enumerate() {
            prop_assert_eq!(x.to_bits(), y.to_bits(), "row {} score bits changed", i);
        }
        prop_assert_eq!(
            artifact.val_auc.map(f64::to_bits),
            back.val_auc.map(f64::to_bits)
        );
    }
}
