//! Deterministic high-throughput batch scoring over a [`SafeArtifact`].
//!
//! The scorer micro-batches incoming rows and fans the batches out over
//! `safe_stats::par` — the same fixed-order scoped-thread layer the
//! training pipeline uses — so scores are **bit-identical at any thread
//! count**: every row is computed independently (plan row path and booster
//! row path are both defined as the exact per-row map of their batch
//! counterparts) and batch results are concatenated in batch-index order.
//! Within a batch, the worker runs `CompiledPlan::apply_rows` into one
//! reused feature matrix and then a tree-outer `predict_rows_into` pass —
//! amortizing away both the per-row `Vec` allocations and the cache
//! thrashing of the naive `apply_row` + `predict_row` loop, which walks
//! the whole ensemble once per row.

use std::time::Instant;

use safe_core::plan::{CompiledPlan, PlanError};
use safe_data::dataset::Dataset;
use safe_gbm::GbmModel;
use safe_obs::{stages, SinkHandle};
use safe_ops::registry::OperatorRegistry;
use safe_stats::par::{try_par_map, Parallelism};

use crate::artifact::SafeArtifact;
use crate::error::ServeError;

/// Default rows per micro-batch. Large enough to amortize buffer setup and
/// thread handoff, small enough to keep per-worker memory bounded.
pub const DEFAULT_BATCH_SIZE: usize = 1024;

/// What one scoring call did: volume, batching, threading, latency.
#[derive(Debug, Clone, PartialEq)]
pub struct ScoreReport {
    /// Rows scored.
    pub rows: u64,
    /// Micro-batches executed.
    pub batches: u64,
    /// Rows per micro-batch (the configured cap; the tail batch is smaller).
    pub batch_size: usize,
    /// Resolved worker budget the call ran with.
    pub threads: usize,
    /// End-to-end wall time in integer microseconds.
    pub total_us: u64,
    /// Throughput over the whole call (`rows / total seconds`).
    pub rows_per_sec: f64,
    /// Median per-batch latency (log2-bucket upper bound, microseconds;
    /// 0 when no batches ran). From the same deterministic
    /// [`safe_obs::LatencyHisto`] the telemetry stream feeds.
    pub batch_p50_us: u64,
    /// 99th-percentile per-batch latency (log2-bucket upper bound,
    /// microseconds; 0 when no batches ran).
    pub batch_p99_us: u64,
}

/// Batch scorer for a saved [`SafeArtifact`].
///
/// Construction compiles the plan once; every call then runs
/// allocation-free per row. See the module docs for the determinism
/// contract.
#[derive(Debug)]
pub struct Scorer {
    compiled: CompiledPlan,
    model: GbmModel,
    batch_size: usize,
    parallelism: Parallelism,
    sink: SinkHandle,
}

impl Scorer {
    /// Compile `artifact` against `registry` and validate that the booster
    /// and plan agree on the feature count.
    ///
    /// Sealed: external callers construct scoring surfaces through
    /// [`ScorerHandle`] (offline batches) or [`crate::ScoreService`]
    /// (streamed requests); the raw executor is crate-internal.
    pub(crate) fn new(
        artifact: &SafeArtifact,
        registry: &OperatorRegistry,
    ) -> Result<Scorer, ServeError> {
        artifact.validate()?;
        let compiled = artifact.plan.compile(registry)?;
        Ok(Scorer {
            compiled,
            model: artifact.model.clone(),
            batch_size: DEFAULT_BATCH_SIZE,
            parallelism: Parallelism::auto(),
            sink: SinkHandle::null(),
        })
    }

    /// Rows per micro-batch (values below 1 are clamped to 1).
    pub fn with_batch_size(mut self, batch_size: usize) -> Self {
        self.batch_size = batch_size.max(1);
        self
    }

    /// Worker budget (`0` = auto-detect, `1` = serial). Any setting yields
    /// bit-identical scores.
    pub fn with_threads(mut self, threads: usize) -> Self {
        self.parallelism = Parallelism::new(threads);
        self
    }

    /// Telemetry sink: each call emits a `score` span with `rows`,
    /// `batches`, and `threads` counters. Never influences scores.
    pub fn with_sink(mut self, sink: SinkHandle) -> Self {
        self.sink = sink;
        self
    }

    /// Number of raw input values each row must carry.
    pub fn n_inputs(&self) -> usize {
        self.compiled.n_inputs()
    }

    /// Execute one micro-batch into reused buffers: plan apply into
    /// `features`, then a tree-outer predict into `scores` (both cleared
    /// first). This is the single batch kernel shared by the offline
    /// scorer and the [`crate::ScoreService`] workers — one definition,
    /// so the two surfaces are bit-identical by construction.
    pub(crate) fn execute_batch(
        &self,
        rows: &[f64],
        n_cols: usize,
        features: &mut Vec<f64>,
        scores: &mut Vec<f64>,
    ) -> Result<(), PlanError> {
        self.compiled.apply_rows(rows, n_cols, features)?;
        self.model
            .predict_rows_into(features, self.compiled.n_outputs(), scores);
        Ok(())
    }

    /// Score a row-major flat batch (`n_cols` values per row, aligned with
    /// the artifact's input schema). Returns one score per row plus the
    /// call's [`ScoreReport`].
    ///
    /// Shape errors follow the contract of `CompiledPlan::apply_rows`.
    pub fn score_rows(
        &self,
        rows: &[f64],
        n_cols: usize,
    ) -> Result<(Vec<f64>, ScoreReport), ServeError> {
        if n_cols != self.compiled.n_inputs() {
            return Err(ServeError::Plan(PlanError::MissingInput(format!(
                "expected {} input columns, got {}",
                self.compiled.n_inputs(),
                n_cols
            ))));
        }
        if n_cols == 0 {
            if !rows.is_empty() {
                return Err(ServeError::Plan(PlanError::Data(
                    "non-empty batch for a zero-input plan".into(),
                )));
            }
            return Ok((Vec::new(), self.report(0, 0, 0)));
        }
        if !rows.len().is_multiple_of(n_cols) {
            return Err(ServeError::Plan(PlanError::Data(format!(
                "ragged batch: {} values is not a multiple of {} columns",
                rows.len(),
                n_cols
            ))));
        }

        let n_rows = rows.len() / n_cols;
        let n_batches = n_rows.div_ceil(self.batch_size.max(1));
        let start = Instant::now();
        self.sink.as_dyn().stage_start(stages::SCORE, None);

        // One task per micro-batch; results concatenate in batch-index
        // order, so the thread count never changes the output bytes.
        let n_outputs = self.compiled.n_outputs();
        let per_batch = try_par_map(self.parallelism, n_batches, |b| {
            let batch_start = Instant::now();
            let lo = b * self.batch_size;
            let hi = ((b + 1) * self.batch_size).min(n_rows);
            // Per-batch buffers: one engineered-feature matrix and one
            // score vector, reused across every row in the batch. The
            // kernel (plan apply + tree-outer predict) is `execute_batch`,
            // shared verbatim with the daemon's workers.
            let mut features = Vec::with_capacity((hi - lo) * n_outputs);
            let mut scores = Vec::with_capacity(hi - lo);
            if let Err(e) =
                self.execute_batch(&rows[lo * n_cols..hi * n_cols], n_cols, &mut features, &mut scores)
            {
                // Unreachable: the shape was validated above once for the
                // whole batch.
                panic!("pre-validated batch failed: {e}");
            }
            (scores, u64::try_from(batch_start.elapsed().as_micros()).unwrap_or(u64::MAX))
        })
        .map_err(|p| ServeError::Worker(p.message))?;
        // Batch latencies in batch-index order (deterministic join order of
        // `try_par_map`); the histogram itself merges exactly, so the
        // quantile values depend only on the multiset of latencies.
        let mut batch_histo = safe_obs::LatencyHisto::new();
        let mut scores: Vec<f64> = Vec::with_capacity(n_rows);
        let sink = self.sink.as_dyn();
        for (batch_scores, batch_us) in per_batch {
            batch_histo.record(batch_us);
            sink.observe(stages::SCORE, None, "batch_us", batch_us);
            scores.extend_from_slice(&batch_scores);
        }

        let total_us = u64::try_from(start.elapsed().as_micros()).unwrap_or(u64::MAX);
        let mut report = self.report(n_rows as u64, n_batches as u64, total_us);
        report.batch_p50_us = batch_histo.p50();
        report.batch_p99_us = batch_histo.p99();
        sink.counter(stages::SCORE, None, "rows", report.rows);
        sink.counter(stages::SCORE, None, "batches", report.batches);
        sink.counter(stages::SCORE, None, "threads", report.threads as u64);
        sink.stage_end(stages::SCORE, None, total_us);
        Ok((scores, report))
    }

    /// Score a dataset: columns are located by the artifact's input schema
    /// (extra columns are ignored; order does not matter), then routed
    /// through [`Scorer::score_rows`].
    pub fn score_dataset(&self, ds: &Dataset) -> Result<(Vec<f64>, ScoreReport), ServeError> {
        let n_cols = self.compiled.n_inputs();
        let cols: Vec<&[f64]> = self
            .compiled
            .input_names()
            .iter()
            .map(|name| {
                ds.column_by_name(name)
                    .map_err(|_| ServeError::Plan(PlanError::MissingInput(name.clone())))
            })
            .collect::<Result<_, _>>()?;
        let mut rows = Vec::with_capacity(ds.n_rows() * n_cols);
        for i in 0..ds.n_rows() {
            for col in &cols {
                rows.push(col[i]);
            }
        }
        self.score_rows(&rows, n_cols)
    }

    fn report(&self, rows: u64, batches: u64, total_us: u64) -> ScoreReport {
        let secs = total_us as f64 / 1e6;
        ScoreReport {
            rows,
            batches,
            batch_size: self.batch_size,
            threads: self.parallelism.resolve(),
            total_us,
            rows_per_sec: if secs > 0.0 { rows as f64 / secs } else { 0.0 },
            batch_p50_us: 0,
            batch_p99_us: 0,
        }
    }
}

/// Narrow public handle for **offline** batch scoring over a saved
/// [`SafeArtifact`].
///
/// This is the sealed construction surface for the internal [`Scorer`]
/// executor: external code scores either through a `ScorerHandle` (whole
/// batches, one call) or through [`crate::ScoreService`] (streamed
/// requests, long-lived daemon) — both run the identical batch kernel, so
/// their outputs are bit-identical by construction. The handle
/// intentionally exposes no executor internals; configure it with the
/// builder methods and call [`ScorerHandle::score_rows`] /
/// [`ScorerHandle::score_dataset`].
#[derive(Debug)]
pub struct ScorerHandle {
    inner: Scorer,
}

impl ScorerHandle {
    /// Compile `artifact` against `registry` and validate that the booster
    /// and plan agree on the feature count.
    pub fn new(
        artifact: &SafeArtifact,
        registry: &OperatorRegistry,
    ) -> Result<ScorerHandle, ServeError> {
        Ok(ScorerHandle { inner: Scorer::new(artifact, registry)? })
    }

    /// Rows per micro-batch (values below 1 are clamped to 1). Never
    /// changes output bits.
    pub fn with_batch_size(mut self, batch_size: usize) -> Self {
        self.inner = self.inner.with_batch_size(batch_size);
        self
    }

    /// Worker budget (`0` = auto-detect, `1` = serial). Any setting yields
    /// bit-identical scores.
    pub fn with_threads(mut self, threads: usize) -> Self {
        self.inner = self.inner.with_threads(threads);
        self
    }

    /// Telemetry sink: each call emits a `score` span with `rows`,
    /// `batches`, and `threads` counters. Never influences scores.
    pub fn with_sink(mut self, sink: SinkHandle) -> Self {
        self.inner = self.inner.with_sink(sink);
        self
    }

    /// Number of raw input values each row must carry.
    pub fn n_inputs(&self) -> usize {
        self.inner.n_inputs()
    }

    /// Score a row-major flat batch (`n_cols` values per row, aligned with
    /// the artifact's input schema). See [`Scorer::score_rows`].
    pub fn score_rows(
        &self,
        rows: &[f64],
        n_cols: usize,
    ) -> Result<(Vec<f64>, ScoreReport), ServeError> {
        self.inner.score_rows(rows, n_cols)
    }

    /// Score a dataset: columns are located by the artifact's input schema
    /// (extra columns are ignored; order does not matter).
    pub fn score_dataset(&self, ds: &Dataset) -> Result<(Vec<f64>, ScoreReport), ServeError> {
        self.inner.score_dataset(ds)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testutil::{toy_artifact, toy_split};
    use safe_obs::{EventKind, MemorySink};
    use std::sync::Arc;

    fn scorer(seed: u64) -> (SafeArtifact, Scorer) {
        let artifact = toy_artifact(seed);
        let scorer = Scorer::new(&artifact, &OperatorRegistry::standard()).unwrap();
        (artifact, scorer)
    }

    #[test]
    fn scores_match_column_path_bitwise() {
        let (artifact, scorer) = scorer(21);
        let (_, valid) = toy_split(21);
        let eng = artifact.plan.apply(&valid).unwrap();
        let expected = artifact.model.predict(&eng);
        let (got, report) = scorer.score_dataset(&valid).unwrap();
        assert_eq!(got.len(), expected.len());
        for (i, (a, b)) in got.iter().zip(&expected).enumerate() {
            assert_eq!(a.to_bits(), b.to_bits(), "row {i}");
        }
        assert_eq!(report.rows as usize, valid.n_rows());
    }

    #[test]
    fn thread_count_never_changes_bits() {
        let (_, base) = scorer(22);
        let (_, valid) = toy_split(22);
        let (serial, _) = base.score_dataset(&valid).unwrap();
        for threads in [2usize, 4, 7] {
            let (_, s) = scorer(22);
            let (par, report) = s
                .with_threads(threads)
                .with_batch_size(16)
                .score_dataset(&valid)
                .unwrap();
            assert_eq!(report.threads, threads);
            assert_eq!(par.len(), serial.len());
            for (i, (a, b)) in par.iter().zip(&serial).enumerate() {
                assert_eq!(a.to_bits(), b.to_bits(), "threads={threads} row {i}");
            }
        }
    }

    #[test]
    fn batch_size_never_changes_bits() {
        let (_, base) = scorer(23);
        let (_, valid) = toy_split(23);
        let (reference, _) = base.score_dataset(&valid).unwrap();
        for batch in [1usize, 7, 64, 100_000] {
            let (_, s) = scorer(23);
            let (got, report) = s.with_batch_size(batch).score_dataset(&valid).unwrap();
            assert_eq!(report.batch_size, batch.max(1));
            for (a, b) in got.iter().zip(&reference) {
                assert_eq!(a.to_bits(), b.to_bits(), "batch={batch}");
            }
            assert_eq!(
                report.batches,
                (valid.n_rows() as u64).div_ceil(batch as u64)
            );
        }
    }

    #[test]
    fn flat_rows_match_dataset_path() {
        let (_, s) = scorer(24);
        let (_, valid) = toy_split(24);
        let (via_ds, _) = s.score_dataset(&valid).unwrap();
        let n_cols = s.n_inputs();
        let mut flat = Vec::new();
        for i in 0..valid.n_rows() {
            flat.extend_from_slice(&valid.row(i));
        }
        let (via_rows, _) = s.score_rows(&flat, n_cols).unwrap();
        assert_eq!(via_ds.len(), via_rows.len());
        for (a, b) in via_ds.iter().zip(&via_rows) {
            assert_eq!(a.to_bits(), b.to_bits());
        }
    }

    #[test]
    fn telemetry_span_and_counters_emitted() {
        let sink = Arc::new(MemorySink::new());
        let (_, s) = scorer(25);
        let (_, valid) = toy_split(25);
        let s = s.with_sink(SinkHandle::new(sink.clone()));
        let (_, report) = s.score_dataset(&valid).unwrap();
        let events = sink.events();
        assert!(events
            .iter()
            .any(|e| e.kind == EventKind::StageStart && e.stage == stages::SCORE));
        assert!(events
            .iter()
            .any(|e| e.kind == EventKind::StageEnd && e.stage == stages::SCORE));
        let rows = events
            .iter()
            .find(|e| e.kind == EventKind::Counter && e.name == "rows")
            .expect("rows counter");
        assert_eq!(rows.value, report.rows);
        assert!(events
            .iter()
            .any(|e| e.kind == EventKind::Counter && e.name == "batches"));
        assert!(events
            .iter()
            .any(|e| e.kind == EventKind::Counter && e.name == "threads"));
    }

    #[test]
    fn batch_latency_quantiles_and_observe_events() {
        let sink = Arc::new(MemorySink::new());
        let (_, s) = scorer(28);
        let (_, valid) = toy_split(28);
        let s = s.with_sink(SinkHandle::new(sink.clone())).with_batch_size(16);
        let (_, report) = s.score_dataset(&valid).unwrap();
        assert!(report.batches > 1, "want multiple batches for quantiles");
        // Quantiles land on log2-bucket upper bounds and are ordered.
        assert!(report.batch_p50_us <= report.batch_p99_us);
        assert!(report.batch_p99_us > 0, "batches take nonzero time");
        // One sink-only observe event per batch.
        let observes: Vec<_> = sink
            .events()
            .into_iter()
            .filter(|e| e.kind == EventKind::Observe && e.name == "batch_us")
            .collect();
        assert_eq!(observes.len(), report.batches as usize);
        // Replaying the observe stream reproduces the report's quantiles.
        let snap = safe_obs::MetricsSnapshot::from_events(&sink.events());
        let h = snap
            .histogram("batch_us", &[("stage", stages::SCORE)])
            .expect("batch_us histogram");
        assert_eq!(h.p50(), report.batch_p50_us);
        assert_eq!(h.p99(), report.batch_p99_us);
    }

    #[test]
    fn shape_errors_follow_plan_contract() {
        let (_, s) = scorer(26);
        // Wrong column count.
        assert!(matches!(
            s.score_rows(&[1.0, 2.0], 2).unwrap_err(),
            ServeError::Plan(PlanError::MissingInput(_))
        ));
        // Ragged batch.
        let n = s.n_inputs();
        assert!(matches!(
            s.score_rows(&vec![0.0; n + 1], n).unwrap_err(),
            ServeError::Plan(PlanError::Data(_))
        ));
        // Dataset missing an input column.
        let bad = Dataset::from_columns(vec!["zz".into()], vec![vec![1.0]], None).unwrap();
        assert!(matches!(
            s.score_dataset(&bad).unwrap_err(),
            ServeError::Plan(PlanError::MissingInput(_))
        ));
    }

    #[test]
    fn handle_surface_matches_internal_scorer() {
        let artifact = toy_artifact(29);
        let handle = ScorerHandle::new(&artifact, &OperatorRegistry::standard())
            .unwrap()
            .with_threads(2)
            .with_batch_size(8);
        assert_eq!(handle.n_inputs(), 3);
        let (_, valid) = toy_split(29);
        let (via_handle, report) = handle.score_dataset(&valid).unwrap();
        let (_, direct) = scorer(29);
        let (bits, _) = direct.score_dataset(&valid).unwrap();
        for (i, (a, b)) in via_handle.iter().zip(&bits).enumerate() {
            assert_eq!(a.to_bits(), b.to_bits(), "row {i}");
        }
        assert_eq!(report.threads, 2);
        assert_eq!(report.batch_size, 8);
    }

    #[test]
    fn empty_batch_scores_nothing() {
        let (_, s) = scorer(27);
        let n = s.n_inputs();
        let (scores, report) = s.score_rows(&[], n).unwrap();
        assert!(scores.is_empty());
        assert_eq!(report.rows, 0);
        assert_eq!(report.batches, 0);
    }
}
