//! # safe-serve — versioned artifacts + a long-lived scoring daemon
//!
//! The paper's deliverable is a feature-generation function Ψ "applicable
//! at inference time"; this crate is that inference side:
//!
//! - [`SafeArtifact`] — one versioned, checksummed text file bundling the
//!   learned [`safe_core::FeaturePlan`], the fitted scoring booster, the
//!   expected raw input schema, and per-feature provenance metadata. A
//!   save/load round trip preserves score bits exactly (every float is
//!   serialized as its IEEE-754 bit pattern).
//! - [`ScoreService`] — the long-lived request pipeline: submit rows one
//!   at a time, a worker pool coalesces them into micro-batches through a
//!   hand-rolled MPMC [`queue::BatchQueue`], and the loaded artifact can
//!   be **hot-swapped atomically** with a monotonic version stamped on
//!   every [`ScoreResponse`].
//! - [`ScorerHandle`] — the narrow offline surface for one-shot batch
//!   scoring. Batches fan out across `safe_stats::par` with fixed-order
//!   merging, so output is **bit-identical at any thread count** — and
//!   the daemon runs the identical batch kernel, so streamed and offline
//!   scores agree bit-for-bit.
//! - [`ScoreReport`] / [`ServiceReport`] — volume, batching, threading,
//!   and latency quantiles, mirrored to the `safe-obs` sink.
//!
//! Offline batch:
//!
//! ```no_run
//! use safe_serve::{SafeArtifact, ScorerHandle};
//! use safe_ops::registry::OperatorRegistry;
//!
//! let artifact = SafeArtifact::load("model.safeartifact").unwrap();
//! let scorer = ScorerHandle::new(&artifact, &OperatorRegistry::standard())
//!     .unwrap()
//!     .with_threads(4);
//! # let incoming = safe_data::dataset::Dataset::with_rows(0);
//! let (scores, report) = scorer.score_dataset(&incoming).unwrap();
//! println!("{} rows at {:.0} rows/s", report.rows, report.rows_per_sec);
//! # let _ = scores;
//! ```
//!
//! Streamed daemon with a zero-downtime model rollover:
//!
//! ```no_run
//! use safe_serve::{SafeArtifact, ScoreService, ServiceConfig};
//! use safe_ops::registry::OperatorRegistry;
//!
//! let registry = OperatorRegistry::standard();
//! let artifact = SafeArtifact::load("model-v1.safeartifact").unwrap();
//! let service = ScoreService::start(&artifact, &registry, ServiceConfig::default()).unwrap();
//! let ticket = service.submit(vec![0.1, 0.2, 0.3]).unwrap();
//! let next = SafeArtifact::load("model-v2.safeartifact").unwrap();
//! let version = service.swap_artifact(&next, &registry).unwrap(); // zero downtime
//! let response = ticket.wait().unwrap();
//! println!("score {} from artifact v{} (now serving v{version})",
//!     response.score, response.version);
//! let report = service.shutdown();
//! println!("{} requests in {} batches", report.completed, report.batches);
//! ```

#![warn(missing_docs)]
#![warn(clippy::unwrap_used, clippy::expect_used)]
#![cfg_attr(test, allow(clippy::unwrap_used, clippy::expect_used))]

pub mod artifact;
pub mod error;
pub mod queue;
mod scorer;
mod service;

pub use artifact::{SafeArtifact, ARTIFACT_FORMAT_VERSION};
pub use error::ServeError;
pub use scorer::{ScoreReport, ScorerHandle, DEFAULT_BATCH_SIZE};
pub use service::{
    ScoreResponse, ScoreService, ServiceConfig, ServiceReport, Ticket, DEFAULT_MAX_BATCH,
    DEFAULT_QUEUE_CAPACITY,
};

#[cfg(test)]
pub(crate) mod testutil {
    //! Shared fixtures: a deterministic synthetic split and a small
    //! trained artifact over a hand-built plan.

    use safe_core::plan::{FeaturePlan, PlanStep};
    use safe_data::dataset::Dataset;
    use safe_gbm::GbmConfig;
    use safe_ops::registry::OperatorRegistry;

    use crate::artifact::SafeArtifact;

    fn lcg(state: &mut u64) -> f64 {
        *state = state
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        ((*state >> 11) as f64) / ((1u64 << 53) as f64)
    }

    fn make(n: usize, state: &mut u64) -> Dataset {
        let mut cols = vec![Vec::with_capacity(n); 3];
        let mut labels = Vec::with_capacity(n);
        for _ in 0..n {
            let a = lcg(state) * 2.0 - 1.0;
            let b = lcg(state) * 2.0 - 1.0;
            let c = lcg(state) * 2.0 - 1.0;
            cols[0].push(a);
            cols[1].push(b);
            cols[2].push(c);
            labels.push(u8::from(a + 0.5 * b - 0.2 * c > 0.0));
        }
        Dataset::from_columns(
            vec!["a".into(), "b".into(), "c".into()],
            cols,
            Some(labels),
        )
        .unwrap()
    }

    /// Deterministic (train, valid) pair keyed by `seed`.
    pub fn toy_split(seed: u64) -> (Dataset, Dataset) {
        let mut state = seed.wrapping_mul(0x9e3779b97f4a7c15) | 1;
        (make(300, &mut state), make(150, &mut state))
    }

    /// A small hand-built plan over the toy schema: two generated features
    /// plus the three originals.
    pub fn toy_plan() -> FeaturePlan {
        FeaturePlan {
            input_names: vec!["a".into(), "b".into(), "c".into()],
            steps: vec![
                PlanStep {
                    name: "mul(a,b)".into(),
                    op: "mul".into(),
                    parents: vec!["a".into(), "b".into()],
                    params: vec![],
                },
                PlanStep {
                    name: "div(a,c)".into(),
                    op: "div".into(),
                    parents: vec!["a".into(), "c".into()],
                    params: vec![],
                },
            ],
            outputs: vec![
                "a".into(),
                "b".into(),
                "c".into(),
                "mul(a,b)".into(),
                "div(a,c)".into(),
            ],
        }
    }

    /// A trained artifact over [`toy_plan`] with a recorded validation AUC.
    pub fn toy_artifact(seed: u64) -> SafeArtifact {
        let (train, valid) = toy_split(seed);
        SafeArtifact::train(
            &toy_plan(),
            &OperatorRegistry::standard(),
            &train,
            Some(&valid),
            &GbmConfig::miner(),
        )
        .unwrap()
    }
}
