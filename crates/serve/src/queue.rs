//! Hand-rolled MPMC work queue with micro-batch coalescing.
//!
//! The scoring daemon's request pipeline sits on this queue: any number of
//! producers ([`crate::ScoreService::submit`] callers) push single-row
//! jobs, any number of consumers (the worker pool) pop them — and the pop
//! side drains **up to `max` items in one lock acquisition**, so requests
//! that arrive close together coalesce into one micro-batch and pay for
//! one plan-apply + one tree-outer predict pass instead of many.
//!
//! Built entirely on `std::sync` (`Mutex` + two `Condvar`s) — no external
//! dependencies, no unsafe. Storage is *segmented*: items live in
//! fixed-capacity segments ([`SEGMENT_CAP`]) chained in a `VecDeque`, so a
//! deep backlog grows by appending segments (no reallocation-and-copy of
//! the whole backlog) and a fully drained segment frees its memory instead
//! of pinning the high-water mark forever, which is what a single ring
//! buffer would do under bursty industrial traffic.
//!
//! # Ordering and blocking contract
//!
//! - **FIFO.** Items pop in push order (the mutex serializes both sides),
//!   so queue-wait time is fair. Correctness never depends on this —
//!   every job is scored independently — but latency reporting does.
//! - **Bounded.** `push` blocks once `len == capacity` (backpressure to
//!   producers) and wakes when a consumer drains. The queue can never grow
//!   without bound just because scoring falls behind.
//! - **Close-and-drain.** After [`BatchQueue::close`], pushes fail fast
//!   (returning the rejected item) but consumers keep draining whatever
//!   was accepted; `pop_batch` returns `0` only when the queue is closed
//!   *and* empty. Every accepted job is therefore eventually delivered —
//!   shutdown never strands a caller waiting on a response.

use std::collections::VecDeque;
use std::sync::{Condvar, Mutex, MutexGuard};

/// Items per storage segment. Large enough that segment churn is rare at
/// serving batch sizes, small enough that an idle queue holds almost no
/// memory.
pub const SEGMENT_CAP: usize = 256;

/// Queue traffic counters, snapshotted by [`BatchQueue::stats`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct QueueStats {
    /// Items accepted by `push`.
    pub pushed: u64,
    /// Items delivered by `pop_batch`.
    pub popped: u64,
    /// Non-empty batches delivered (so `popped / batches` is the realized
    /// coalescing factor).
    pub batches: u64,
}

/// One fixed-capacity storage segment. A ring buffer internally, so front
/// pops are O(1) with no element shifting; dropped (memory freed) once
/// fully consumed and no longer the push target.
struct Segment<T> {
    items: VecDeque<T>,
}

impl<T> Segment<T> {
    fn new() -> Self {
        Segment { items: VecDeque::with_capacity(SEGMENT_CAP) }
    }

    fn is_full(&self) -> bool {
        self.items.len() >= SEGMENT_CAP
    }
}

struct Inner<T> {
    segments: VecDeque<Segment<T>>,
    len: usize,
    closed: bool,
    stats: QueueStats,
}

/// Bounded MPMC queue whose consumers drain micro-batches. See the module
/// docs for the full contract.
pub struct BatchQueue<T> {
    inner: Mutex<Inner<T>>,
    /// Signalled on push and on close: consumers waiting for work.
    not_empty: Condvar,
    /// Signalled on pop and on close: producers waiting for room.
    not_full: Condvar,
    capacity: usize,
}

impl<T> BatchQueue<T> {
    /// A queue accepting at most `capacity` queued items (minimum 1).
    pub fn new(capacity: usize) -> Self {
        BatchQueue {
            inner: Mutex::new(Inner {
                segments: VecDeque::new(),
                len: 0,
                closed: false,
                stats: QueueStats::default(),
            }),
            not_empty: Condvar::new(),
            not_full: Condvar::new(),
            capacity: capacity.max(1),
        }
    }

    /// Recover the guard from a poisoned mutex: every invariant is
    /// restored before the guard drops in all paths below, so the data is
    /// consistent even if another thread panicked while holding the lock.
    fn lock(&self) -> MutexGuard<'_, Inner<T>> {
        self.inner.lock().unwrap_or_else(std::sync::PoisonError::into_inner)
    }

    /// Enqueue one item, blocking while the queue is full. Returns the
    /// item back when the queue has been closed (the caller keeps
    /// ownership and can report the rejection).
    pub fn push(&self, item: T) -> Result<(), T> {
        let mut g = self.lock();
        while g.len >= self.capacity && !g.closed {
            g = self.not_full.wait(g).unwrap_or_else(std::sync::PoisonError::into_inner);
        }
        if g.closed {
            return Err(item);
        }
        if g.segments.back().is_none_or(Segment::is_full) {
            g.segments.push_back(Segment::new());
        }
        if let Some(seg) = g.segments.back_mut() {
            seg.items.push_back(item);
        }
        g.len += 1;
        g.stats.pushed += 1;
        drop(g);
        self.not_empty.notify_one();
        Ok(())
    }

    /// Block until at least one item is available (or the queue closes),
    /// then append up to `max` items to `out` in FIFO order — one lock
    /// acquisition for the whole batch. Returns the number delivered;
    /// `0` means closed-and-drained (the shutdown signal).
    pub fn pop_batch(&self, max: usize, out: &mut Vec<T>) -> usize {
        let max = max.max(1);
        let mut g = self.lock();
        while g.len == 0 {
            if g.closed {
                return 0;
            }
            g = self.not_empty.wait(g).unwrap_or_else(std::sync::PoisonError::into_inner);
        }
        let take = max.min(g.len);
        let mut taken = 0;
        while taken < take {
            let Some(front) = g.segments.front_mut() else { break };
            match front.items.pop_front() {
                Some(item) => {
                    out.push(item);
                    taken += 1;
                }
                // Drained segment: free it and move to the next. A new
                // one is allocated on demand by the push side.
                None => {
                    g.segments.pop_front();
                }
            }
        }
        g.len -= taken;
        g.stats.popped += taken as u64;
        g.stats.batches += 1;
        drop(g);
        // Room freed: wake blocked producers (all of them — one batch may
        // free room for many).
        self.not_full.notify_all();
        taken
    }

    /// Close the queue: subsequent pushes fail fast, consumers drain the
    /// backlog then observe shutdown. Idempotent.
    pub fn close(&self) {
        let mut g = self.lock();
        g.closed = true;
        drop(g);
        self.not_empty.notify_all();
        self.not_full.notify_all();
    }

    /// Items currently queued.
    pub fn len(&self) -> usize {
        self.lock().len
    }

    /// Whether the queue holds no items.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Whether [`BatchQueue::close`] has been called.
    pub fn is_closed(&self) -> bool {
        self.lock().closed
    }

    /// Snapshot of the traffic counters.
    pub fn stats(&self) -> QueueStats {
        self.lock().stats
    }
}

impl<T> std::fmt::Debug for BatchQueue<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let g = self.lock();
        f.debug_struct("BatchQueue")
            .field("len", &g.len)
            .field("capacity", &self.capacity)
            .field("closed", &g.closed)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn fifo_order_single_threaded() {
        let q = BatchQueue::new(1024);
        for i in 0..1000 {
            q.push(i).unwrap();
        }
        let mut out = Vec::new();
        while !q.is_empty() {
            q.pop_batch(64, &mut out);
        }
        assert_eq!(out, (0..1000).collect::<Vec<_>>());
        let stats = q.stats();
        assert_eq!(stats.pushed, 1000);
        assert_eq!(stats.popped, 1000);
        assert!(stats.batches >= 1000 / 64);
    }

    #[test]
    fn pop_batch_caps_at_max() {
        let q = BatchQueue::new(1024);
        for i in 0..100 {
            q.push(i).unwrap();
        }
        let mut out = Vec::new();
        assert_eq!(q.pop_batch(7, &mut out), 7);
        assert_eq!(out, vec![0, 1, 2, 3, 4, 5, 6]);
        assert_eq!(q.len(), 93);
    }

    #[test]
    fn segments_chain_and_drain_across_boundaries() {
        let q = BatchQueue::new(10 * SEGMENT_CAP);
        for i in 0..(3 * SEGMENT_CAP) {
            q.push(i).unwrap();
        }
        let mut out = Vec::new();
        // Odd-sized batches force pops to straddle segment boundaries.
        while !q.is_empty() {
            q.pop_batch(97, &mut out);
        }
        assert_eq!(out.len(), 3 * SEGMENT_CAP);
        assert!(out.iter().enumerate().all(|(i, &v)| i == v));
    }

    #[test]
    fn close_drains_then_signals_shutdown() {
        let q = BatchQueue::new(64);
        q.push(1).unwrap();
        q.push(2).unwrap();
        q.close();
        assert_eq!(q.push(3), Err(3), "closed queue rejects pushes");
        let mut out = Vec::new();
        assert_eq!(q.pop_batch(64, &mut out), 2, "backlog still drains");
        assert_eq!(q.pop_batch(64, &mut out), 0, "then shutdown");
    }

    #[test]
    fn blocking_pop_wakes_on_push() {
        let q = Arc::new(BatchQueue::new(64));
        let q2 = q.clone();
        let h = std::thread::spawn(move || {
            let mut out = Vec::new();
            q2.pop_batch(8, &mut out);
            out
        });
        std::thread::sleep(std::time::Duration::from_millis(20));
        q.push(42u64).unwrap();
        assert_eq!(h.join().unwrap(), vec![42]);
    }

    #[test]
    fn bounded_push_blocks_until_drained() {
        let q = Arc::new(BatchQueue::new(2));
        q.push(0).unwrap();
        q.push(1).unwrap();
        let q2 = q.clone();
        let producer = std::thread::spawn(move || q2.push(2).is_ok());
        std::thread::sleep(std::time::Duration::from_millis(20));
        assert_eq!(q.len(), 2, "third push must still be blocked");
        let mut out = Vec::new();
        q.pop_batch(1, &mut out);
        assert!(producer.join().unwrap(), "freed capacity unblocks the push");
        while !q.is_empty() {
            q.pop_batch(4, &mut out);
        }
        assert_eq!(out, vec![0, 1, 2]);
    }

    #[test]
    fn close_unblocks_full_queue_producer() {
        let q = Arc::new(BatchQueue::new(1));
        q.push(0).unwrap();
        let q2 = q.clone();
        let producer = std::thread::spawn(move || q2.push(1));
        std::thread::sleep(std::time::Duration::from_millis(20));
        q.close();
        assert_eq!(producer.join().unwrap(), Err(1), "close returns the item");
    }

    #[test]
    fn mpmc_delivers_every_item_exactly_once() {
        const PRODUCERS: usize = 4;
        const CONSUMERS: usize = 3;
        const PER_PRODUCER: usize = 500;
        let q = Arc::new(BatchQueue::new(128));
        let mut producers = Vec::new();
        for p in 0..PRODUCERS {
            let q = q.clone();
            producers.push(std::thread::spawn(move || {
                for i in 0..PER_PRODUCER {
                    q.push(p * PER_PRODUCER + i).unwrap();
                }
            }));
        }
        let mut consumers = Vec::new();
        for _ in 0..CONSUMERS {
            let q = q.clone();
            consumers.push(std::thread::spawn(move || {
                let mut got = Vec::new();
                while q.pop_batch(16, &mut got) > 0 {}
                got
            }));
        }
        for h in producers {
            h.join().unwrap();
        }
        q.close();
        let mut all: Vec<usize> = Vec::new();
        for c in consumers {
            all.extend(c.join().unwrap());
        }
        all.sort_unstable();
        assert_eq!(all, (0..PRODUCERS * PER_PRODUCER).collect::<Vec<_>>());
    }
}
