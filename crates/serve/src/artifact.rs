//! The versioned serving artifact: plan + booster + schema in one file.
//!
//! Format (version 1) — line-oriented, tab-separated, zero dependencies:
//!
//! ```text
//! SAFEARTIFACT\t1
//! CHECKSUM\t<fnv1a-64 hex of everything below this line>
//! INPUT\t<raw column name>                       (one per expected input)
//! OUTPUT\t<name>\toriginal
//! OUTPUT\t<name>\tgenerated\t<op>\t<n>\t<parents…>
//! VAL_AUC\t<hex f64>                             (optional)
//! PLAN_BEGIN
//! <embedded SAFEPLAN v1 text>
//! PLAN_END
//! BOOSTER_BEGIN
//! <embedded SAFEGBM v1 text>
//! BOOSTER_END
//! ```
//!
//! Versioning/compat rules: the major format version in the header is
//! bumped on any change a v1 reader cannot ignore; unknown *record kinds*
//! within a version are an error (the checksum already guarantees the file
//! is exactly what was written, so leniency would only mask corruption).
//! All floats are 16-hex-digit IEEE-754 bit patterns — a save/load round
//! trip is bit-exact, which is what makes the serving-side AUC reproduce
//! the training-side AUC bit for bit.

use std::path::Path;

use safe_core::plan::FeaturePlan;
use safe_data::dataset::{Dataset, FeatureMeta, FeatureOrigin};
use safe_gbm::{Gbm, GbmConfig, GbmModel};
use safe_ops::registry::OperatorRegistry;
use safe_stats::auc::auc;

use crate::error::ServeError;

/// Current artifact format version.
pub const ARTIFACT_FORMAT_VERSION: u32 = 1;

/// FNV-1a 64-bit hash — the checksum the artifact header carries. Not
/// cryptographic; it exists to catch truncation and accidental edits.
/// Shared with the `SAFECKPT` training checkpoint via
/// [`safe_data::checksum`]; re-exported here for API compatibility.
pub use safe_data::checksum::fnv1a64;

/// Everything the serving side needs, bundled and versioned: the learned
/// feature plan Ψ, the fitted scoring booster, the expected raw input
/// schema, and per-output feature metadata.
#[derive(Debug, Clone)]
pub struct SafeArtifact {
    /// The learned feature-generation function.
    pub plan: FeaturePlan,
    /// The fitted booster scoring the plan's output features.
    pub model: GbmModel,
    /// Raw input columns the scorer expects, in plan order (the audit
    /// schema for incoming data).
    pub input_schema: Vec<String>,
    /// Name + provenance of each scored feature, in model-feature order.
    pub output_meta: Vec<FeatureMeta>,
    /// Validation AUC recorded at train time, when a validation set was
    /// supplied. Stored bit-exactly so the serving side can be checked
    /// against it.
    pub val_auc: Option<f64>,
}

impl SafeArtifact {
    /// Train the serving bundle for a learned plan: engineer `train` (and
    /// `valid`) through the plan, fit `config` on the engineered features,
    /// and record the validation AUC bit-exactly.
    pub fn train(
        plan: &FeaturePlan,
        registry: &OperatorRegistry,
        train: &Dataset,
        valid: Option<&Dataset>,
        config: &GbmConfig,
    ) -> Result<SafeArtifact, ServeError> {
        let compiled = plan.compile(registry)?;
        let eng_train = compiled.apply(train)?;
        let eng_valid = match valid {
            Some(v) => Some(compiled.apply(v)?),
            None => None,
        };
        let model = Gbm::new(config.clone()).fit(&eng_train, eng_valid.as_ref())?;
        let val_auc = match &eng_valid {
            Some(v) => {
                let labels = v
                    .labels()
                    .ok_or_else(|| ServeError::Data("validation set has no labels".into()))?;
                Some(auc(&model.predict(v), labels))
            }
            None => None,
        };
        Ok(SafeArtifact {
            plan: plan.clone(),
            model,
            input_schema: plan.input_names.clone(),
            output_meta: compiled.output_meta().to_vec(),
            val_auc,
        })
    }

    /// Internal consistency: schema lines must agree with the embedded
    /// plan, and the booster's feature count with the plan's output count.
    pub fn validate(&self) -> Result<(), ServeError> {
        if self.input_schema != self.plan.input_names {
            return Err(ServeError::Schema(
                "INPUT schema does not match the embedded plan's inputs".into(),
            ));
        }
        if self.output_meta.len() != self.plan.outputs.len() {
            return Err(ServeError::Schema(format!(
                "{} OUTPUT records for a plan with {} outputs",
                self.output_meta.len(),
                self.plan.outputs.len()
            )));
        }
        for (meta, name) in self.output_meta.iter().zip(&self.plan.outputs) {
            if &meta.name != name {
                return Err(ServeError::Schema(format!(
                    "OUTPUT '{}' does not match plan output '{}'",
                    meta.name, name
                )));
            }
        }
        if self.model.n_features() != self.plan.outputs.len() {
            return Err(ServeError::Schema(format!(
                "booster expects {} features, plan produces {}",
                self.model.n_features(),
                self.plan.outputs.len()
            )));
        }
        Ok(())
    }

    /// Serialize to the versioned text format (checksum included).
    pub fn to_text(&self) -> String {
        let mut body = String::new();
        for name in &self.input_schema {
            body.push_str("INPUT\t");
            body.push_str(name);
            body.push('\n');
        }
        for meta in &self.output_meta {
            body.push_str("OUTPUT\t");
            body.push_str(&meta.name);
            match &meta.origin {
                FeatureOrigin::Original => body.push_str("\toriginal"),
                FeatureOrigin::Generated { op, parents } => {
                    body.push_str("\tgenerated\t");
                    body.push_str(op);
                    body.push('\t');
                    body.push_str(&parents.len().to_string());
                    for p in parents {
                        body.push('\t');
                        body.push_str(p);
                    }
                }
            }
            body.push('\n');
        }
        if let Some(a) = self.val_auc {
            body.push_str(&format!("VAL_AUC\t{:016x}\n", a.to_bits()));
        }
        body.push_str("PLAN_BEGIN\n");
        body.push_str(&self.plan.to_text());
        body.push_str("PLAN_END\n");
        body.push_str("BOOSTER_BEGIN\n");
        body.push_str(&self.model.to_text());
        body.push_str("BOOSTER_END\n");

        let mut out = String::from("SAFEARTIFACT\t1\n");
        out.push_str(&format!("CHECKSUM\t{:016x}\n", fnv1a64(body.as_bytes())));
        out.push_str(&body);
        out
    }

    /// Parse the text format: header and checksum verified first, then the
    /// sections, then cross-section consistency ([`SafeArtifact::validate`]).
    pub fn from_text(text: &str) -> Result<SafeArtifact, ServeError> {
        let parse_err = |line: usize, message: &str| ServeError::Parse {
            line: line + 1,
            message: message.to_string(),
        };
        let mut it = text.splitn(3, '\n');
        let header = it.next().unwrap_or("");
        if header != "SAFEARTIFACT\t1" {
            return Err(parse_err(0, "bad header (expected SAFEARTIFACT v1)"));
        }
        let checksum_line = it
            .next()
            .ok_or_else(|| parse_err(1, "missing CHECKSUM line"))?;
        let expected = checksum_line
            .strip_prefix("CHECKSUM\t")
            .ok_or_else(|| parse_err(1, "second line must be CHECKSUM"))?;
        let body = it.next().unwrap_or("");
        let actual = format!("{:016x}", fnv1a64(body.as_bytes()));
        if expected != actual {
            return Err(ServeError::Checksum {
                expected: expected.to_string(),
                actual,
            });
        }

        let mut input_schema = Vec::new();
        let mut output_meta = Vec::new();
        let mut val_auc = None;
        let mut plan_text: Option<String> = None;
        let mut booster_text: Option<String> = None;
        // Section being accumulated: None = top level.
        let mut section: Option<(&str, String)> = None;

        // Line numbers are offset by the 2 header lines for error messages.
        for (i, line) in body.lines().enumerate() {
            let i = i + 2;
            if let Some((kind, acc)) = section.as_mut() {
                let end = if *kind == "plan" { "PLAN_END" } else { "BOOSTER_END" };
                if line == end {
                    let (kind, acc) = section.take().unwrap_or(("", String::new()));
                    if kind == "plan" {
                        plan_text = Some(acc);
                    } else {
                        booster_text = Some(acc);
                    }
                } else {
                    acc.push_str(line);
                    acc.push('\n');
                }
                continue;
            }
            if line.trim().is_empty() {
                continue;
            }
            let fields: Vec<&str> = line.split('\t').collect();
            match fields[0] {
                "INPUT" if fields.len() == 2 => input_schema.push(fields[1].to_string()),
                "OUTPUT" if fields.len() >= 3 => match fields[2] {
                    "original" if fields.len() == 3 => {
                        output_meta.push(FeatureMeta::original(fields[1]))
                    }
                    "generated" if fields.len() >= 5 => {
                        let n: usize = fields[4]
                            .parse()
                            .map_err(|_| parse_err(i, "bad parent count"))?;
                        if fields.len() != 5 + n {
                            return Err(parse_err(i, "parent count mismatch"));
                        }
                        let parents = fields[5..].iter().map(|s| s.to_string()).collect();
                        output_meta.push(FeatureMeta::generated(fields[1], fields[3], parents));
                    }
                    other => {
                        return Err(parse_err(i, &format!("bad OUTPUT origin '{other}'")))
                    }
                },
                "VAL_AUC" if fields.len() == 2 => {
                    let bits = u64::from_str_radix(fields[1], 16)
                        .map_err(|_| parse_err(i, "bad VAL_AUC hex"))?;
                    val_auc = Some(f64::from_bits(bits));
                }
                "PLAN_BEGIN" => section = Some(("plan", String::new())),
                "BOOSTER_BEGIN" => section = Some(("booster", String::new())),
                other => return Err(parse_err(i, &format!("unrecognized record '{other}'"))),
            }
        }
        if section.is_some() {
            return Err(parse_err(0, "unterminated PLAN/BOOSTER section"));
        }
        let plan_text = plan_text.ok_or_else(|| parse_err(0, "missing PLAN section"))?;
        let booster_text =
            booster_text.ok_or_else(|| parse_err(0, "missing BOOSTER section"))?;

        let artifact = SafeArtifact {
            plan: FeaturePlan::from_text(&plan_text)?,
            model: GbmModel::from_text(&booster_text)?,
            input_schema,
            output_meta,
            val_auc,
        };
        artifact.validate()?;
        Ok(artifact)
    }

    /// Write the artifact to a file.
    pub fn save(&self, path: impl AsRef<Path>) -> Result<(), ServeError> {
        let path = path.as_ref();
        std::fs::write(path, self.to_text()).map_err(|source| ServeError::Io {
            path: path.display().to_string(),
            source,
        })
    }

    /// Read an artifact back from a file.
    pub fn load(path: impl AsRef<Path>) -> Result<SafeArtifact, ServeError> {
        let path = path.as_ref();
        let text = std::fs::read_to_string(path).map_err(|source| ServeError::Io {
            path: path.display().to_string(),
            source,
        })?;
        SafeArtifact::from_text(&text)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testutil::{toy_artifact, toy_split};

    #[test]
    fn fnv_vectors() {
        // Published FNV-1a 64 test vectors.
        assert_eq!(fnv1a64(b""), 0xcbf2_9ce4_8422_2325);
        assert_eq!(fnv1a64(b"a"), 0xaf63_dc4c_8601_ec8c);
        assert_eq!(fnv1a64(b"foobar"), 0x85944171f73967e8);
    }

    #[test]
    fn text_round_trip_preserves_everything() {
        let artifact = toy_artifact(11);
        let back = SafeArtifact::from_text(&artifact.to_text()).unwrap();
        assert_eq!(back.plan, artifact.plan);
        assert_eq!(back.input_schema, artifact.input_schema);
        assert_eq!(back.output_meta, artifact.output_meta);
        assert_eq!(
            back.val_auc.map(f64::to_bits),
            artifact.val_auc.map(f64::to_bits),
            "stored AUC must survive bit-exactly"
        );
        assert_eq!(back.model.n_trees(), artifact.model.n_trees());
        // Same bytes out again.
        assert_eq!(back.to_text(), artifact.to_text());
    }

    #[test]
    fn round_trip_preserves_score_bits() {
        let artifact = toy_artifact(12);
        let (_, valid) = toy_split(12);
        let eng = artifact.plan.apply(&valid).unwrap();
        let direct = artifact.model.predict(&eng);
        let back = SafeArtifact::from_text(&artifact.to_text()).unwrap();
        let replayed = back.model.predict(&back.plan.apply(&valid).unwrap());
        assert_eq!(direct.len(), replayed.len());
        for (a, b) in direct.iter().zip(&replayed) {
            assert_eq!(a.to_bits(), b.to_bits());
        }
    }

    #[test]
    fn save_load_round_trips_on_disk() {
        let dir = std::env::temp_dir().join(format!("safe-serve-test-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("artifact.safe");
        let artifact = toy_artifact(13);
        artifact.save(&path).unwrap();
        let back = SafeArtifact::load(&path).unwrap();
        assert_eq!(back.to_text(), artifact.to_text());
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn tampering_is_detected() {
        let text = toy_artifact(14).to_text();
        // Flip one byte in the body.
        let tampered = text.replacen("INPUT", "INPUX", 1);
        match SafeArtifact::from_text(&tampered) {
            Err(ServeError::Checksum { .. }) => {}
            other => panic!("expected checksum error, got {other:?}"),
        }
        // Truncation loses the booster end marker → checksum fails first.
        let truncated = &text[..text.len() - 20];
        assert!(SafeArtifact::from_text(truncated).is_err());
    }

    #[test]
    fn bad_headers_rejected() {
        assert!(SafeArtifact::from_text("").is_err());
        assert!(SafeArtifact::from_text("NOTANARTIFACT\t1\n").is_err());
        assert!(SafeArtifact::from_text("SAFEARTIFACT\t1\nBODY\n").is_err());
        // Version 2 does not exist yet.
        assert!(SafeArtifact::from_text("SAFEARTIFACT\t2\nCHECKSUM\t0\n").is_err());
    }

    #[test]
    fn cross_section_disagreement_rejected() {
        let mut artifact = toy_artifact(15);
        artifact.input_schema.push("phantom".into());
        let err = SafeArtifact::from_text(&artifact.to_text()).unwrap_err();
        assert!(matches!(err, ServeError::Schema(_)), "{err:?}");
    }

    #[test]
    fn missing_validation_set_leaves_auc_unset() {
        let (train, _) = toy_split(16);
        let artifact = SafeArtifact::train(
            &toy_artifact(16).plan,
            &OperatorRegistry::standard(),
            &train,
            None,
            &GbmConfig::miner(),
        )
        .unwrap();
        assert!(artifact.val_auc.is_none());
        let back = SafeArtifact::from_text(&artifact.to_text()).unwrap();
        assert!(back.val_auc.is_none());
    }
}
