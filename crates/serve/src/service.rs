//! Long-lived scoring service: worker pool, request pipeline, artifact
//! hot-swap.
//!
//! [`ScoreService`] turns the one-shot batch scorer into a persistent
//! daemon. Callers [`ScoreService::submit`] single rows and get a
//! [`Ticket`] back immediately; a pool of worker threads drains the shared
//! [`crate::queue::BatchQueue`] in micro-batches (coalescing whatever has
//! accumulated, up to `max_batch`, into one plan-apply + one tree-outer
//! predict pass) and fulfills each ticket with a [`ScoreResponse`].
//!
//! # Determinism contract
//!
//! Every row is a pure function of `(artifact, values)`: the batch
//! executor is defined as the exact per-row map of its batch counterpart
//! (see `crates/serve/src/scorer.rs`), so the worker count, the submission
//! order, and the coalescing pattern can never change a single output
//! bit. The streamed score for a row is bit-identical to the offline
//! [`crate::ScorerHandle`] score under the same artifact — the
//! differential suites in `tests/serve_daemon_differential.rs` enforce
//! this at worker counts {1, 2, 4} and adversarial batch shapes.
//!
//! # Hot swap
//!
//! The loaded artifact lives behind an [`ArtifactCell`]: an
//! `Arc`-snapshot slot plus a separately published atomic version
//! counter. Workers keep a cached `Arc` clone and, per micro-batch, do one
//! `Acquire` load of the version — only when it differs from the cached
//! snapshot's version do they touch the slot mutex. The steady-state read
//! path is therefore lock-free; the mutex is contended only in the
//! instants around a swap. [`ScoreService::swap_artifact`] installs a new
//! artifact with **zero downtime**: requests already dequeued finish under
//! the old snapshot (and are stamped with its version), later batches pick
//! up the new one. The version stamped on a response is always read from
//! the same snapshot that produced the score bits, so
//! `(version, score_bits)` pairs stay consistent even for requests that
//! straddle the swap — the linearization point is the mutex-guarded slot
//! store, made visible to the fast path by the `Release` publish of the
//! version counter.

use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex, MutexGuard};
use std::thread::JoinHandle;
use std::time::Instant;

use safe_core::plan::PlanError;
use safe_obs::{stages, LatencyHisto, SinkHandle};
use safe_ops::registry::OperatorRegistry;
use safe_stats::par::Parallelism;

use crate::artifact::SafeArtifact;
use crate::error::ServeError;
use crate::queue::{BatchQueue, QueueStats};
use crate::scorer::Scorer;

/// Default micro-batch coalescing cap for the worker pool.
pub const DEFAULT_MAX_BATCH: usize = 256;
/// Default bound on queued (accepted but not yet scored) requests.
pub const DEFAULT_QUEUE_CAPACITY: usize = 4096;

/// Tuning knobs for [`ScoreService::start`]. All values are clamped to
/// sane minimums rather than rejected — surface-level validation (usage
/// errors for `0`) belongs to the caller, e.g. the CLI.
#[derive(Debug, Clone)]
pub struct ServiceConfig {
    /// Worker threads (`0` = auto-detect from the machine, same rule as
    /// `safe_stats::par::Parallelism`).
    pub workers: usize,
    /// Micro-batch coalescing cap: a worker drains up to this many queued
    /// requests per lock acquisition (minimum 1).
    pub max_batch: usize,
    /// Backpressure bound: `submit` blocks once this many requests are
    /// queued (minimum 1).
    pub queue_capacity: usize,
    /// Telemetry sink; the service emits a `serve-daemon` span with
    /// per-request `queue_wait_us` / `request_us` observe events and
    /// shutdown counters. Never influences scores.
    pub sink: SinkHandle,
}

impl Default for ServiceConfig {
    fn default() -> Self {
        ServiceConfig {
            workers: 0,
            max_batch: DEFAULT_MAX_BATCH,
            queue_capacity: DEFAULT_QUEUE_CAPACITY,
            sink: SinkHandle::null(),
        }
    }
}

/// One scored request: the score bits plus the artifact version that
/// produced them and the request's latency breakdown.
#[derive(Debug, Clone, PartialEq)]
pub struct ScoreResponse {
    /// Service-assigned submission sequence number (dense, starts at 0).
    pub id: u64,
    /// The model score for the submitted row.
    pub score: f64,
    /// Monotonic version of the artifact snapshot that computed `score`
    /// (the initial artifact is version 1; each successful swap adds 1).
    pub version: u64,
    /// Microseconds the request sat queued before a worker dequeued it.
    pub queue_wait_us: u64,
    /// Microseconds from submission to scored (queue wait + execution).
    pub total_us: u64,
}

/// Aggregate service statistics, returned by [`ScoreService::report`] and
/// [`ScoreService::shutdown`].
#[derive(Debug, Clone, PartialEq)]
pub struct ServiceReport {
    /// Requests scored successfully.
    pub completed: u64,
    /// Requests fulfilled with an error (failed batch or worker panic).
    pub failed: u64,
    /// Micro-batches executed (so `completed / batches` is the realized
    /// coalescing factor).
    pub batches: u64,
    /// Successful artifact hot-swaps.
    pub swaps: u64,
    /// Worker threads in the pool.
    pub workers: usize,
    /// Configured micro-batch coalescing cap.
    pub max_batch: usize,
    /// Current artifact version.
    pub version: u64,
    /// Service lifetime so far, integer microseconds.
    pub total_us: u64,
    /// Completed requests per second over the service lifetime.
    pub rows_per_sec: f64,
    /// Median queue wait (log2-bucket upper bound, microseconds).
    pub queue_p50_us: u64,
    /// 99th-percentile queue wait (log2-bucket upper bound, microseconds).
    pub queue_p99_us: u64,
    /// Median end-to-end request latency (log2-bucket upper bound, µs).
    pub request_p50_us: u64,
    /// 99th-percentile end-to-end request latency (log2-bucket upper
    /// bound, microseconds).
    pub request_p99_us: u64,
}

/// A pending response for one submitted row. `wait` blocks until a worker
/// fulfills it; dropping the ticket abandons the response (the row is
/// still scored).
#[derive(Debug)]
pub struct Ticket {
    slot: Arc<Slot>,
}

impl Ticket {
    /// Block until the request is scored (or failed) and take the result.
    pub fn wait(self) -> Result<ScoreResponse, ServeError> {
        let mut g = lock(&self.slot.state);
        loop {
            match g.take() {
                Some(result) => return result,
                None => g = wait(&self.slot.ready, g),
            }
        }
    }
}

#[derive(Debug)]
struct Slot {
    state: Mutex<Option<Result<ScoreResponse, ServeError>>>,
    ready: Condvar,
}

impl Slot {
    fn new() -> Self {
        Slot { state: Mutex::new(None), ready: Condvar::new() }
    }

    /// First writer wins; later fulfillments are ignored so a defensive
    /// double-fulfill can never clobber a delivered result.
    fn fulfill(&self, result: Result<ScoreResponse, ServeError>) {
        let mut g = lock(&self.state);
        if g.is_none() {
            *g = Some(result);
        }
        drop(g);
        self.ready.notify_all();
    }
}

fn lock<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(std::sync::PoisonError::into_inner)
}

fn wait<'a, T>(cv: &Condvar, g: MutexGuard<'a, T>) -> MutexGuard<'a, T> {
    cv.wait(g).unwrap_or_else(std::sync::PoisonError::into_inner)
}

fn micros(d: std::time::Duration) -> u64 {
    u64::try_from(d.as_micros()).unwrap_or(u64::MAX)
}

/// An artifact snapshot: the compiled executor plus the monotonic version
/// it was installed as. Workers hold `Arc<Loaded>` clones, so a swap never
/// invalidates an in-flight batch — the old snapshot lives until its last
/// user drops it.
struct Loaded {
    scorer: Scorer,
    version: u64,
}

/// The swap cell: a mutex-guarded `Arc` slot plus a separately published
/// atomic version. Readers pay one `Acquire` load per micro-batch on the
/// fast path and take the mutex only when the version moved; writers
/// install under the mutex and then `Release`-publish the new version
/// (the fast path's change signal). See the module docs for the
/// linearization argument.
struct ArtifactCell {
    slot: Mutex<Arc<Loaded>>,
    version: AtomicU64,
}

impl ArtifactCell {
    fn new(scorer: Scorer) -> Self {
        ArtifactCell {
            slot: Mutex::new(Arc::new(Loaded { scorer, version: 1 })),
            version: AtomicU64::new(1),
        }
    }

    /// Latest published version (lock-free).
    fn version(&self) -> u64 {
        self.version.load(Ordering::Acquire)
    }

    /// Clone the current snapshot (takes the slot mutex).
    fn snapshot(&self) -> Arc<Loaded> {
        lock(&self.slot).clone()
    }

    /// Install a new artifact snapshot; returns the version it was
    /// assigned. The version counter is read from the displaced snapshot
    /// under the same mutex, so concurrent installs serialize and the
    /// sequence stays strictly monotonic.
    fn install(&self, scorer: Scorer) -> u64 {
        let mut g = lock(&self.slot);
        let version = g.version + 1;
        *g = Arc::new(Loaded { scorer, version });
        self.version.store(version, Ordering::Release);
        version
    }
}

struct Job {
    id: u64,
    values: Vec<f64>,
    enqueued: Instant,
    slot: Arc<Slot>,
}

struct Stats {
    completed: AtomicU64,
    failed: AtomicU64,
    batches: AtomicU64,
    swaps: AtomicU64,
    queue_wait: Mutex<LatencyHisto>,
    request: Mutex<LatencyHisto>,
}

impl Stats {
    fn new() -> Self {
        Stats {
            completed: AtomicU64::new(0),
            failed: AtomicU64::new(0),
            batches: AtomicU64::new(0),
            swaps: AtomicU64::new(0),
            queue_wait: Mutex::new(LatencyHisto::new()),
            request: Mutex::new(LatencyHisto::new()),
        }
    }
}

struct Shared {
    queue: BatchQueue<Job>,
    cell: ArtifactCell,
    stats: Stats,
    sink: SinkHandle,
    n_inputs: usize,
    max_batch: usize,
}

/// The long-lived scoring daemon. See the module docs for the pipeline
/// and hot-swap architecture.
pub struct ScoreService {
    shared: Arc<Shared>,
    workers: Vec<JoinHandle<()>>,
    next_id: AtomicU64,
    started: Instant,
    n_workers: usize,
    input_schema: Vec<String>,
}

impl std::fmt::Debug for ScoreService {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ScoreService")
            .field("workers", &self.n_workers)
            .field("max_batch", &self.shared.max_batch)
            .field("version", &self.shared.cell.version())
            .finish()
    }
}

impl ScoreService {
    /// Validate and compile `artifact`, then spin up the worker pool. The
    /// service is accepting submissions when this returns.
    pub fn start(
        artifact: &SafeArtifact,
        registry: &OperatorRegistry,
        config: ServiceConfig,
    ) -> Result<ScoreService, ServeError> {
        let scorer = Scorer::new(artifact, registry)?;
        let n_inputs = scorer.n_inputs();
        let n_workers = Parallelism::new(config.workers).resolve().max(1);
        let shared = Arc::new(Shared {
            queue: BatchQueue::new(config.queue_capacity.max(1)),
            cell: ArtifactCell::new(scorer),
            stats: Stats::new(),
            sink: config.sink,
            n_inputs,
            max_batch: config.max_batch.max(1),
        });
        shared.sink.as_dyn().stage_start(stages::SERVE, None);
        let mut workers = Vec::with_capacity(n_workers);
        for w in 0..n_workers {
            let shared = Arc::clone(&shared);
            let handle = std::thread::Builder::new()
                .name(format!("safe-serve-{w}"))
                .spawn(move || worker_loop(&shared))
                .map_err(|e| ServeError::Worker(format!("failed to spawn worker {w}: {e}")))?;
            workers.push(handle);
        }
        Ok(ScoreService {
            shared,
            workers,
            next_id: AtomicU64::new(0),
            started: Instant::now(),
            n_workers,
            input_schema: artifact.input_schema.clone(),
        })
    }

    /// Submit one row (values aligned with the artifact's input schema).
    /// Blocks only when the queue is at capacity (backpressure); returns a
    /// [`Ticket`] resolving to the row's [`ScoreResponse`].
    pub fn submit(&self, values: Vec<f64>) -> Result<Ticket, ServeError> {
        if values.len() != self.shared.n_inputs {
            return Err(ServeError::Plan(PlanError::MissingInput(format!(
                "expected {} input values per request, got {}",
                self.shared.n_inputs,
                values.len()
            ))));
        }
        let id = self.next_id.fetch_add(1, Ordering::Relaxed);
        let slot = Arc::new(Slot::new());
        let job = Job { id, values, enqueued: Instant::now(), slot: Arc::clone(&slot) };
        match self.shared.queue.push(job) {
            Ok(()) => Ok(Ticket { slot }),
            Err(_) => Err(ServeError::Closed),
        }
    }

    /// Atomically hot-swap the served artifact with zero downtime; returns
    /// the new monotonic version. The new artifact must declare the same
    /// input schema as the running one — in-flight and future submissions
    /// share one row shape — otherwise the swap is rejected with
    /// [`ServeError::Schema`] and the current artifact keeps serving.
    pub fn swap_artifact(
        &self,
        artifact: &SafeArtifact,
        registry: &OperatorRegistry,
    ) -> Result<u64, ServeError> {
        if artifact.input_schema != self.input_schema {
            return Err(ServeError::Schema(format!(
                "hot swap requires an identical input schema: service expects {:?}, new artifact declares {:?}",
                self.input_schema, artifact.input_schema
            )));
        }
        let scorer = Scorer::new(artifact, registry)?;
        let version = self.shared.cell.install(scorer);
        self.shared.stats.swaps.fetch_add(1, Ordering::Relaxed);
        Ok(version)
    }

    /// Currently published artifact version.
    pub fn version(&self) -> u64 {
        self.shared.cell.version()
    }

    /// Input values each submitted row must carry.
    pub fn n_inputs(&self) -> usize {
        self.shared.n_inputs
    }

    /// Queue traffic counters (pushed/popped/batches).
    pub fn queue_stats(&self) -> QueueStats {
        self.shared.queue.stats()
    }

    /// Live statistics snapshot. Callable at any point in the service's
    /// life; `shutdown` returns the final one.
    pub fn report(&self) -> ServiceReport {
        let stats = &self.shared.stats;
        let completed = stats.completed.load(Ordering::Relaxed);
        let total_us = micros(self.started.elapsed());
        let secs = total_us as f64 / 1e6;
        let queue_wait = lock(&stats.queue_wait);
        let request = lock(&stats.request);
        ServiceReport {
            completed,
            failed: stats.failed.load(Ordering::Relaxed),
            batches: stats.batches.load(Ordering::Relaxed),
            swaps: stats.swaps.load(Ordering::Relaxed),
            workers: self.n_workers,
            max_batch: self.shared.max_batch,
            version: self.shared.cell.version(),
            total_us,
            rows_per_sec: if secs > 0.0 { completed as f64 / secs } else { 0.0 },
            queue_p50_us: queue_wait.p50(),
            queue_p99_us: queue_wait.p99(),
            request_p50_us: request.p50(),
            request_p99_us: request.p99(),
        }
    }

    /// Graceful shutdown: stop accepting submissions, drain every queued
    /// request (all outstanding tickets resolve), join the workers, emit
    /// final telemetry counters, and return the final report.
    pub fn shutdown(mut self) -> ServiceReport {
        self.join_workers();
        let report = self.report();
        let sink = self.shared.sink.as_dyn();
        sink.counter(stages::SERVE, None, "requests", report.completed);
        sink.counter(stages::SERVE, None, "failed", report.failed);
        sink.counter(stages::SERVE, None, "batches", report.batches);
        sink.counter(stages::SERVE, None, "swaps", report.swaps);
        sink.counter(stages::SERVE, None, "workers", report.workers as u64);
        sink.stage_end(stages::SERVE, None, report.total_us);
        report
    }

    fn join_workers(&mut self) {
        self.shared.queue.close();
        for handle in self.workers.drain(..) {
            let _ = handle.join();
        }
    }
}

impl Drop for ScoreService {
    /// Dropping without [`ScoreService::shutdown`] still drains the queue
    /// and joins the pool (no request is ever stranded), but skips the
    /// final telemetry counters.
    fn drop(&mut self) {
        self.join_workers();
    }
}

fn panic_message(payload: Box<dyn std::any::Any + Send>) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "worker panicked".to_string()
    }
}

fn worker_loop(shared: &Shared) {
    let mut cached = shared.cell.snapshot();
    let mut jobs: Vec<Job> = Vec::new();
    let mut rows: Vec<f64> = Vec::new();
    let mut features: Vec<f64> = Vec::new();
    let mut scores: Vec<f64> = Vec::new();
    loop {
        jobs.clear();
        if shared.queue.pop_batch(shared.max_batch, &mut jobs) == 0 {
            break;
        }
        let dequeued = Instant::now();
        // Lock-free fast path: one Acquire load per micro-batch. The slot
        // mutex is touched only when a swap actually happened.
        if shared.cell.version() != cached.version {
            cached = shared.cell.snapshot();
        }
        rows.clear();
        for job in &jobs {
            rows.extend_from_slice(&job.values);
        }
        // Containment: a panic inside plan apply / predict fails this
        // micro-batch's tickets but never takes down the worker or the
        // service.
        let outcome = catch_unwind(AssertUnwindSafe(|| {
            cached.scorer.execute_batch(&rows, shared.n_inputs, &mut features, &mut scores)
        }));
        let n_jobs = jobs.len() as u64;
        match outcome {
            Ok(Ok(())) if scores.len() == jobs.len() => {
                let done = Instant::now();
                let sink = shared.sink.as_dyn();
                let mut queue_wait = lock(&shared.stats.queue_wait);
                let mut request = lock(&shared.stats.request);
                for (job, &score) in jobs.drain(..).zip(scores.iter()) {
                    let queue_wait_us = micros(dequeued.saturating_duration_since(job.enqueued));
                    let total_us = micros(done.saturating_duration_since(job.enqueued));
                    queue_wait.record(queue_wait_us);
                    request.record(total_us);
                    if shared.sink.enabled() {
                        sink.observe(stages::SERVE, None, "queue_wait_us", queue_wait_us);
                        sink.observe(stages::SERVE, None, "request_us", total_us);
                    }
                    job.slot.fulfill(Ok(ScoreResponse {
                        id: job.id,
                        score,
                        version: cached.version,
                        queue_wait_us,
                        total_us,
                    }));
                }
                drop(queue_wait);
                drop(request);
                shared.stats.completed.fetch_add(n_jobs, Ordering::Relaxed);
                shared.stats.batches.fetch_add(1, Ordering::Relaxed);
            }
            Ok(Ok(())) => {
                // Defensive: the executor produced a wrong-sized score
                // vector. Fail the batch rather than misattribute scores.
                for job in jobs.drain(..) {
                    job.slot.fulfill(Err(ServeError::Worker(format!(
                        "batch executor returned {} scores for {} rows",
                        scores.len(),
                        n_jobs
                    ))));
                }
                shared.stats.failed.fetch_add(n_jobs, Ordering::Relaxed);
            }
            Ok(Err(e)) => {
                let msg = e.to_string();
                for job in jobs.drain(..) {
                    job.slot
                        .fulfill(Err(ServeError::Data(format!("batch execution failed: {msg}"))));
                }
                shared.stats.failed.fetch_add(n_jobs, Ordering::Relaxed);
            }
            Err(payload) => {
                let msg = panic_message(payload);
                // The unwound executor may have left the reused buffers
                // mid-write; replace them.
                features = Vec::new();
                scores = Vec::new();
                for job in jobs.drain(..) {
                    job.slot.fulfill(Err(ServeError::Worker(msg.clone())));
                }
                shared.stats.failed.fetch_add(n_jobs, Ordering::Relaxed);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scorer::ScorerHandle;
    use crate::testutil::{toy_artifact, toy_split};
    use safe_obs::{EventKind, MemorySink};

    fn rows_of(ds: &safe_data::dataset::Dataset) -> Vec<Vec<f64>> {
        (0..ds.n_rows()).map(|i| ds.row(i)).collect()
    }

    fn offline_bits(artifact: &SafeArtifact, rows: &[Vec<f64>]) -> Vec<u64> {
        let handle = ScorerHandle::new(artifact, &OperatorRegistry::standard()).unwrap();
        let n_cols = handle.n_inputs();
        let flat: Vec<f64> = rows.iter().flatten().copied().collect();
        let (scores, _) = handle.score_rows(&flat, n_cols).unwrap();
        scores.iter().map(|s| s.to_bits()).collect()
    }

    #[test]
    fn streamed_bits_match_offline_scorer() {
        let artifact = toy_artifact(41);
        let (_, valid) = toy_split(41);
        let rows = rows_of(&valid);
        let expected = offline_bits(&artifact, &rows);
        let service = ScoreService::start(
            &artifact,
            &OperatorRegistry::standard(),
            ServiceConfig { workers: 2, max_batch: 8, ..ServiceConfig::default() },
        )
        .unwrap();
        let tickets: Vec<Ticket> =
            rows.iter().map(|r| service.submit(r.clone()).unwrap()).collect();
        for (i, t) in tickets.into_iter().enumerate() {
            let resp = t.wait().unwrap();
            assert_eq!(resp.score.to_bits(), expected[i], "row {i}");
            assert_eq!(resp.version, 1);
        }
        let report = service.shutdown();
        assert_eq!(report.completed as usize, rows.len());
        assert_eq!(report.failed, 0);
        assert!(report.batches >= 1);
    }

    #[test]
    fn coalescing_pattern_never_changes_bits() {
        let artifact = toy_artifact(42);
        let (_, valid) = toy_split(42);
        let rows = rows_of(&valid);
        let expected = offline_bits(&artifact, &rows);
        for max_batch in [1usize, 3, 1024] {
            let service = ScoreService::start(
                &artifact,
                &OperatorRegistry::standard(),
                ServiceConfig { workers: 3, max_batch, ..ServiceConfig::default() },
            )
            .unwrap();
            let tickets: Vec<Ticket> =
                rows.iter().map(|r| service.submit(r.clone()).unwrap()).collect();
            for (i, t) in tickets.into_iter().enumerate() {
                assert_eq!(
                    t.wait().unwrap().score.to_bits(),
                    expected[i],
                    "max_batch={max_batch} row {i}"
                );
            }
        }
    }

    #[test]
    fn swap_stamps_matching_version_and_bits() {
        let a = toy_artifact(43);
        let b = toy_artifact(44); // same schema, different model bits
        let (_, valid) = toy_split(43);
        let rows = rows_of(&valid);
        let bits_a = offline_bits(&a, &rows);
        let bits_b = offline_bits(&b, &rows);
        assert_ne!(bits_a, bits_b, "fixture artifacts must differ");

        let registry = OperatorRegistry::standard();
        let service =
            ScoreService::start(&a, &registry, ServiceConfig { workers: 2, ..Default::default() })
                .unwrap();
        assert_eq!(service.version(), 1);

        let first: Vec<Ticket> =
            rows.iter().map(|r| service.submit(r.clone()).unwrap()).collect();
        let v2 = service.swap_artifact(&b, &registry).unwrap();
        assert_eq!(v2, 2);
        assert_eq!(service.version(), 2);
        let second: Vec<Ticket> =
            rows.iter().map(|r| service.submit(r.clone()).unwrap()).collect();

        // Every response's version must match the artifact that produced
        // its bits — whichever side of the swap it landed on.
        for (i, t) in first.into_iter().chain(second).enumerate() {
            let row = i % rows.len();
            let resp = t.wait().unwrap();
            match resp.version {
                1 => assert_eq!(resp.score.to_bits(), bits_a[row], "req {i} tagged v1"),
                2 => assert_eq!(resp.score.to_bits(), bits_b[row], "req {i} tagged v2"),
                v => panic!("req {i}: unexpected version {v}"),
            }
        }
        let report = service.shutdown();
        assert_eq!(report.swaps, 1);
        assert_eq!(report.version, 2);
    }

    #[test]
    fn swap_rejects_schema_change() {
        let a = toy_artifact(45);
        let registry = OperatorRegistry::standard();
        let service = ScoreService::start(&a, &registry, ServiceConfig::default()).unwrap();
        let mut other = toy_artifact(46);
        other.input_schema = vec!["x".into(), "y".into(), "z".into()];
        other.plan.input_names = other.input_schema.clone();
        assert!(matches!(
            service.swap_artifact(&other, &registry),
            Err(ServeError::Schema(_))
        ));
        assert_eq!(service.version(), 1, "rejected swap must not bump the version");
    }

    #[test]
    fn submit_validates_arity() {
        let artifact = toy_artifact(47);
        let service =
            ScoreService::start(&artifact, &OperatorRegistry::standard(), ServiceConfig::default())
                .unwrap();
        assert!(matches!(
            service.submit(vec![1.0]),
            Err(ServeError::Plan(PlanError::MissingInput(_)))
        ));
        assert_eq!(service.n_inputs(), 3);
    }

    #[test]
    fn shutdown_drains_all_pending_tickets() {
        let artifact = toy_artifact(48);
        let (_, valid) = toy_split(48);
        let rows = rows_of(&valid);
        let service = ScoreService::start(
            &artifact,
            &OperatorRegistry::standard(),
            ServiceConfig { workers: 1, max_batch: 4, ..ServiceConfig::default() },
        )
        .unwrap();
        let tickets: Vec<Ticket> =
            rows.iter().map(|r| service.submit(r.clone()).unwrap()).collect();
        let report = service.shutdown();
        assert_eq!(report.completed as usize, rows.len());
        // Tickets resolve even though the service is gone.
        for t in tickets {
            t.wait().unwrap();
        }
    }

    #[test]
    fn backpressure_bounds_the_queue() {
        let artifact = toy_artifact(49);
        let (_, valid) = toy_split(49);
        let rows = rows_of(&valid);
        let service = ScoreService::start(
            &artifact,
            &OperatorRegistry::standard(),
            ServiceConfig { workers: 2, max_batch: 2, queue_capacity: 4, ..ServiceConfig::default() },
        )
        .unwrap();
        // Submissions block instead of failing; everything still scores.
        let tickets: Vec<Ticket> =
            rows.iter().map(|r| service.submit(r.clone()).unwrap()).collect();
        for t in tickets {
            t.wait().unwrap();
        }
        let stats = service.queue_stats();
        assert_eq!(stats.pushed as usize, rows.len());
        assert_eq!(stats.popped as usize, rows.len());
    }

    #[test]
    fn telemetry_span_observes_and_counters() {
        let sink = Arc::new(MemorySink::new());
        let artifact = toy_artifact(50);
        let (_, valid) = toy_split(50);
        let rows = rows_of(&valid);
        let service = ScoreService::start(
            &artifact,
            &OperatorRegistry::standard(),
            ServiceConfig { sink: SinkHandle::new(sink.clone()), ..ServiceConfig::default() },
        )
        .unwrap();
        let tickets: Vec<Ticket> =
            rows.iter().map(|r| service.submit(r.clone()).unwrap()).collect();
        for t in tickets {
            t.wait().unwrap();
        }
        let report = service.shutdown();
        let events = sink.events();
        assert!(events
            .iter()
            .any(|e| e.kind == EventKind::StageStart && e.stage == stages::SERVE));
        assert!(events
            .iter()
            .any(|e| e.kind == EventKind::StageEnd && e.stage == stages::SERVE));
        let observes = events
            .iter()
            .filter(|e| e.kind == EventKind::Observe && e.name == "request_us")
            .count();
        assert_eq!(observes as u64, report.completed);
        let requests = events
            .iter()
            .find(|e| e.kind == EventKind::Counter && e.name == "requests")
            .expect("requests counter");
        assert_eq!(requests.value, report.completed);
        assert!(report.request_p50_us <= report.request_p99_us);
    }
}
