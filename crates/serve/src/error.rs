//! Typed errors for the serving layer.

use std::fmt;

use safe_core::plan::PlanError;
use safe_gbm::GbmError;

/// Everything that can go wrong while saving, loading, or scoring a
/// [`crate::SafeArtifact`].
#[derive(Debug)]
pub enum ServeError {
    /// Plan compilation or application failed (shares the shape-mismatch
    /// contract documented on `CompiledPlan::apply`).
    Plan(PlanError),
    /// Booster training or deserialization failed.
    Gbm(GbmError),
    /// Artifact text failed to parse.
    Parse {
        /// 1-based line number (0 = whole-document check).
        line: usize,
        /// What went wrong.
        message: String,
    },
    /// The artifact body does not match its checksum line — the file was
    /// truncated or edited after save.
    Checksum {
        /// Checksum recorded in the file.
        expected: String,
        /// Checksum of the body as read.
        actual: String,
    },
    /// The artifact's sections disagree with each other (schema vs. plan,
    /// plan outputs vs. booster feature count).
    Schema(String),
    /// Reading or writing the artifact file failed.
    Io {
        /// Path involved.
        path: String,
        /// Underlying I/O error.
        source: std::io::Error,
    },
    /// Labels or data needed for an operation were absent.
    Data(String),
    /// A scorer worker thread panicked (captured, never unwound).
    Worker(String),
    /// The scoring service has shut down; the submission was rejected
    /// (the row was never accepted, so no response will arrive).
    Closed,
}

impl fmt::Display for ServeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ServeError::Plan(e) => write!(f, "plan error: {e}"),
            ServeError::Gbm(e) => write!(f, "booster error: {e}"),
            ServeError::Parse { line, message } => {
                write!(f, "artifact text line {line}: {message}")
            }
            ServeError::Checksum { expected, actual } => write!(
                f,
                "artifact checksum mismatch: header says {expected}, body hashes to {actual}"
            ),
            ServeError::Schema(msg) => write!(f, "inconsistent artifact: {msg}"),
            ServeError::Io { path, source } => write!(f, "{path}: {source}"),
            ServeError::Data(msg) => write!(f, "data error: {msg}"),
            ServeError::Worker(msg) => write!(f, "scoring worker panicked: {msg}"),
            ServeError::Closed => write!(f, "scoring service is shut down: submission rejected"),
        }
    }
}

impl std::error::Error for ServeError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ServeError::Plan(e) => Some(e),
            ServeError::Gbm(e) => Some(e),
            ServeError::Io { source, .. } => Some(source),
            _ => None,
        }
    }
}

impl From<PlanError> for ServeError {
    fn from(e: PlanError) -> Self {
        ServeError::Plan(e)
    }
}

impl From<GbmError> for ServeError {
    fn from(e: GbmError) -> Self {
        ServeError::Gbm(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::error::Error;

    #[test]
    fn display_covers_variants() {
        assert!(ServeError::Checksum {
            expected: "aa".into(),
            actual: "bb".into()
        }
        .to_string()
        .contains("checksum"));
        assert!(ServeError::Schema("x".into()).to_string().contains('x'));
        assert!(ServeError::Worker("boom".into()).to_string().contains("boom"));
        assert!(ServeError::Closed.to_string().contains("shut down"));
    }

    #[test]
    fn sources_chain() {
        let e = ServeError::Gbm(GbmError::EmptyTraining);
        assert!(e.source().is_some());
        assert!(ServeError::Data("d".into()).source().is_none());
    }
}
