//! Equal-frequency and equal-width binning.
//!
//! Algorithm 3 of the paper packs each candidate feature into β bins "at the
//! same frequency" before computing Information Value; the discretization
//! operators in `safe-ops` reuse the same edges machinery.

use crate::error::DataError;

/// How to place bin edges.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BinStrategy {
    /// Bins hold (approximately) equal numbers of records.
    EqualFrequency,
    /// Bins span equal value ranges.
    EqualWidth,
}

/// Interior cut points defining `edges.len() + 1` bins over the real line.
/// A value `v` lands in bin `i` = number of edges `< v` is... concretely:
/// bin of `v` = index of first edge `>= v`, else `edges.len()`.
/// `NaN` values are assigned to a dedicated extra bin (index `edges.len()+1`
/// is *not* used; see [`BinEdges::assign_with_missing`]).
#[derive(Debug, Clone, PartialEq)]
pub struct BinEdges {
    edges: Vec<f64>,
}

/// Result of assigning a column: per-row bin index plus the bin count.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BinAssignments {
    /// Bin index per row; missing values get index `n_bins - 1` when a
    /// missing bin was requested.
    pub bins: Vec<usize>,
    /// Total number of distinct bin indices (including the missing bin if
    /// present).
    pub n_bins: usize,
}

impl BinEdges {
    /// Construct from explicit, sorted, deduplicated cut points.
    pub fn from_cuts(mut cuts: Vec<f64>) -> Self {
        cuts.retain(|c| c.is_finite());
        cuts.sort_by(f64::total_cmp);
        cuts.dedup();
        BinEdges { edges: cuts }
    }

    /// Fit edges on a column. `NaN`s are ignored during fitting.
    ///
    /// Equal-frequency edges are the β-quantile cut points of the non-missing
    /// values, deduplicated — heavily tied columns therefore yield fewer than
    /// β bins, matching standard WoE-binning practice.
    pub fn fit(values: &[f64], n_bins: usize, strategy: BinStrategy) -> Result<Self, DataError> {
        if n_bins == 0 {
            return Err(DataError::ZeroBins);
        }
        crate::failpoint!("binning/fit", DataError::Injected("binning/fit"));
        let mut clean: Vec<f64> = values.iter().copied().filter(|v| v.is_finite()).collect();
        if clean.is_empty() {
            return Ok(BinEdges { edges: Vec::new() });
        }
        match strategy {
            BinStrategy::EqualFrequency => {
                clean.sort_by(f64::total_cmp);
                let n = clean.len();
                let max = clean[n - 1];
                let mut cuts = Vec::with_capacity(n_bins.saturating_sub(1));
                for k in 1..n_bins {
                    // Upper edge of the k-th of n_bins equal-population chunks.
                    let pos = (k * n) / n_bins;
                    if pos == 0 || pos >= n {
                        continue;
                    }
                    let cut = clean[pos - 1];
                    // A cut at (or past) the max would create an empty top
                    // bin — every value falls at or below it.
                    if cut < max {
                        cuts.push(cut);
                    }
                }
                Ok(BinEdges::from_cuts(cuts))
            }
            BinStrategy::EqualWidth => {
                let min = clean.iter().copied().fold(f64::INFINITY, f64::min);
                let max = clean.iter().copied().fold(f64::NEG_INFINITY, f64::max);
                if min == max {
                    return Ok(BinEdges { edges: Vec::new() });
                }
                let width = (max - min) / n_bins as f64;
                let cuts = (1..n_bins).map(|k| min + width * k as f64).collect();
                Ok(BinEdges::from_cuts(cuts))
            }
        }
    }

    /// The interior cut points.
    pub fn cuts(&self) -> &[f64] {
        &self.edges
    }

    /// Number of bins for finite values.
    pub fn n_value_bins(&self) -> usize {
        self.edges.len() + 1
    }

    /// Bin index of a single finite value: count of edges strictly below `v`
    /// (values equal to an edge fall in the lower bin, i.e. bins are
    /// `(-inf, e0], (e0, e1], ..., (e_last, +inf)`).
    pub fn bin_of(&self, v: f64) -> usize {
        debug_assert!(v.is_finite());
        // Binary search for the partition point of edges < v.
        self.edges.partition_point(|&e| e < v)
    }

    /// Assign every row; missing (`NaN`/inf) values go to a dedicated final
    /// bin which exists only when at least one missing value occurs.
    pub fn assign_with_missing(&self, values: &[f64]) -> BinAssignments {
        let value_bins = self.n_value_bins();
        let mut any_missing = false;
        let bins: Vec<usize> = values
            .iter()
            .map(|&v| {
                if v.is_finite() {
                    self.bin_of(v)
                } else {
                    any_missing = true;
                    value_bins
                }
            })
            .collect();
        BinAssignments {
            bins,
            n_bins: value_bins + usize::from(any_missing),
        }
    }
}

/// Convenience: fit-and-assign in one step (what Algorithm 3 does per
/// candidate feature).
pub fn bin_column(
    values: &[f64],
    n_bins: usize,
    strategy: BinStrategy,
) -> Result<BinAssignments, DataError> {
    Ok(BinEdges::fit(values, n_bins, strategy)?.assign_with_missing(values))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn equal_frequency_balances_populations() {
        let values: Vec<f64> = (0..100).map(|i| i as f64).collect();
        let a = bin_column(&values, 4, BinStrategy::EqualFrequency).unwrap();
        assert_eq!(a.n_bins, 4);
        let mut counts = vec![0usize; a.n_bins];
        for &b in &a.bins {
            counts[b] += 1;
        }
        assert_eq!(counts, vec![25, 25, 25, 25]);
    }

    #[test]
    fn equal_frequency_uneven_sizes_differ_by_at_most_one_chunk() {
        let values: Vec<f64> = (0..10).map(|i| i as f64).collect();
        let a = bin_column(&values, 3, BinStrategy::EqualFrequency).unwrap();
        let mut counts = vec![0usize; a.n_bins];
        for &b in &a.bins {
            counts[b] += 1;
        }
        let max = counts.iter().max().unwrap();
        let min = counts.iter().min().unwrap();
        assert!(max - min <= 1, "counts {counts:?}");
    }

    #[test]
    fn ties_collapse_bins() {
        let values = vec![1.0; 50];
        let a = bin_column(&values, 10, BinStrategy::EqualFrequency).unwrap();
        assert_eq!(a.n_bins, 1);
        assert!(a.bins.iter().all(|&b| b == 0));
    }

    #[test]
    fn equal_width_spans_range() {
        let values = vec![0.0, 1.0, 2.0, 3.0, 4.0, 5.0, 6.0, 7.0, 8.0, 9.0, 10.0];
        let edges = BinEdges::fit(&values, 5, BinStrategy::EqualWidth).unwrap();
        assert_eq!(edges.cuts(), &[2.0, 4.0, 6.0, 8.0]);
        assert_eq!(edges.bin_of(0.0), 0);
        assert_eq!(edges.bin_of(2.0), 0); // edge value falls low
        assert_eq!(edges.bin_of(2.0001), 1);
        assert_eq!(edges.bin_of(10.0), 4);
    }

    #[test]
    fn missing_values_get_their_own_bin() {
        let values = vec![1.0, 2.0, f64::NAN, 3.0, 4.0];
        let a = bin_column(&values, 2, BinStrategy::EqualFrequency).unwrap();
        let missing_bin = a.n_bins - 1;
        assert_eq!(a.bins[2], missing_bin);
        assert!(a.bins.iter().enumerate().all(|(i, &b)| i == 2 || b < missing_bin));
    }

    #[test]
    fn no_missing_bin_when_no_missing_values() {
        let values = vec![1.0, 2.0, 3.0, 4.0];
        let a = bin_column(&values, 2, BinStrategy::EqualFrequency).unwrap();
        assert_eq!(a.n_bins, 2);
    }

    #[test]
    fn zero_bins_rejected() {
        assert_eq!(
            bin_column(&[1.0], 0, BinStrategy::EqualWidth).unwrap_err(),
            DataError::ZeroBins
        );
    }

    #[test]
    fn all_missing_column_yields_single_missing_bin() {
        let values = vec![f64::NAN, f64::NAN];
        let a = bin_column(&values, 4, BinStrategy::EqualFrequency).unwrap();
        assert_eq!(a.n_bins, 2); // one (empty) value bin + missing bin
        assert!(a.bins.iter().all(|&b| b == 1));
    }

    #[test]
    fn constant_equal_width_collapses() {
        let values = vec![5.0; 10];
        let edges = BinEdges::fit(&values, 8, BinStrategy::EqualWidth).unwrap();
        assert_eq!(edges.n_value_bins(), 1);
    }

    #[test]
    fn bin_of_agrees_with_linear_scan() {
        let edges = BinEdges::from_cuts(vec![1.0, 3.0, 7.0]);
        for v in [-5.0, 1.0, 1.5, 3.0, 3.1, 6.9, 7.0, 7.1, 100.0] {
            let linear = edges.cuts().iter().filter(|&&e| e < v).count();
            assert_eq!(edges.bin_of(v), linear, "v={v}");
        }
    }
}
