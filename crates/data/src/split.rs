//! Deterministic shuffling and dataset splitting.
//!
//! The paper's Table IV fixes explicit #train/#valid/#test sizes per dataset;
//! [`train_valid_test_split`] reproduces that protocol (with the "no
//! validation set for small data" convention handled by passing 0).

use crate::dataset::Dataset;
use crate::error::DataError;

/// A train/valid/test partition of one dataset. `valid` is `None` when the
/// validation fraction/size was zero (small benchmark datasets in the paper
/// reuse training data for validation).
#[derive(Debug, Clone)]
pub struct DatasetSplit {
    /// Training partition.
    pub train: Dataset,
    /// Optional validation partition.
    pub valid: Option<Dataset>,
    /// Held-out test partition.
    pub test: Dataset,
}

impl DatasetSplit {
    /// Validation set, falling back to the training set when absent (the
    /// paper: "we simply use training data for validation if necessary").
    pub fn valid_or_train(&self) -> &Dataset {
        self.valid.as_ref().unwrap_or(&self.train)
    }
}

/// Fisher–Yates shuffle of `0..n` driven by a splitmix64 stream seeded with
/// `seed` — deterministic across platforms without pulling `rand` into this
/// low-level crate.
pub fn shuffled_indices(n: usize, seed: u64) -> Vec<usize> {
    let mut idx: Vec<usize> = (0..n).collect();
    let mut state = seed.wrapping_add(0x9E3779B97F4A7C15);
    let mut next = move || {
        state = state.wrapping_add(0x9E3779B97F4A7C15);
        let mut z = state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
        z ^ (z >> 31)
    };
    for i in (1..n).rev() {
        let j = (next() % (i as u64 + 1)) as usize;
        idx.swap(i, j);
    }
    idx
}

/// Split into train/test by fraction (`test_fraction` of rows go to test).
pub fn train_test_split(
    ds: &Dataset,
    test_fraction: f64,
    seed: u64,
) -> Result<(Dataset, Dataset), DataError> {
    if !(0.0..1.0).contains(&test_fraction) {
        return Err(DataError::InvalidSplit(format!(
            "test_fraction {test_fraction} not in [0, 1)"
        )));
    }
    let n = ds.n_rows();
    if n == 0 {
        return Err(DataError::EmptyDataset);
    }
    let idx = shuffled_indices(n, seed);
    let n_test = ((n as f64) * test_fraction).round() as usize;
    let (test_idx, train_idx) = idx.split_at(n_test);
    Ok((ds.select_rows(train_idx), ds.select_rows(test_idx)))
}

/// Split into explicit train/valid/test sizes, paper-style. `n_valid` may be
/// 0, yielding `valid: None`. Sizes must not exceed the row count.
pub fn train_valid_test_split(
    ds: &Dataset,
    n_train: usize,
    n_valid: usize,
    n_test: usize,
    seed: u64,
) -> Result<DatasetSplit, DataError> {
    let total = n_train + n_valid + n_test;
    if total > ds.n_rows() {
        return Err(DataError::InvalidSplit(format!(
            "requested {total} rows but dataset has {}",
            ds.n_rows()
        )));
    }
    if n_train == 0 || n_test == 0 {
        return Err(DataError::InvalidSplit(
            "train and test sizes must be positive".into(),
        ));
    }
    let idx = shuffled_indices(ds.n_rows(), seed);
    let train = ds.select_rows(&idx[..n_train]);
    let valid = if n_valid > 0 {
        Some(ds.select_rows(&idx[n_train..n_train + n_valid]))
    } else {
        None
    };
    let test = ds.select_rows(&idx[n_train + n_valid..n_train + n_valid + n_test]);
    Ok(DatasetSplit { train, valid, test })
}

/// Stratified K-fold indices: returns `k` (train, test) index pairs where
/// each fold preserves the global positive rate as closely as integer
/// arithmetic allows. Used by robustness tests and the stability experiment.
pub fn stratified_kfold(labels: &[u8], k: usize, seed: u64) -> Vec<(Vec<usize>, Vec<usize>)> {
    assert!(k >= 2, "k-fold requires k >= 2");
    let order = shuffled_indices(labels.len(), seed);
    let mut pos: Vec<usize> = Vec::new();
    let mut neg: Vec<usize> = Vec::new();
    for &i in &order {
        if labels[i] == 1 {
            pos.push(i);
        } else {
            neg.push(i);
        }
    }
    let mut folds: Vec<Vec<usize>> = vec![Vec::new(); k];
    for (j, &i) in pos.iter().enumerate() {
        folds[j % k].push(i);
    }
    for (j, &i) in neg.iter().enumerate() {
        folds[j % k].push(i);
    }
    (0..k)
        .map(|f| {
            let test = folds[f].clone();
            let train = folds
                .iter()
                .enumerate()
                .filter(|(i, _)| *i != f)
                .flat_map(|(_, v)| v.iter().copied())
                .collect();
            (train, test)
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dataset::Dataset;

    fn labeled(n: usize) -> Dataset {
        let col: Vec<f64> = (0..n).map(|i| i as f64).collect();
        let labels: Vec<u8> = (0..n).map(|i| (i % 3 == 0) as u8).collect();
        Dataset::from_columns(vec!["x".into()], vec![col], Some(labels)).unwrap()
    }

    #[test]
    fn shuffle_is_a_permutation_and_deterministic() {
        let a = shuffled_indices(100, 7);
        let b = shuffled_indices(100, 7);
        let c = shuffled_indices(100, 8);
        assert_eq!(a, b);
        assert_ne!(a, c);
        let mut sorted = a.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..100).collect::<Vec<_>>());
    }

    #[test]
    fn train_test_sizes() {
        let ds = labeled(100);
        let (train, test) = train_test_split(&ds, 0.25, 1).unwrap();
        assert_eq!(test.n_rows(), 25);
        assert_eq!(train.n_rows(), 75);
    }

    #[test]
    fn train_test_disjoint_and_complete() {
        let ds = labeled(50);
        let (train, test) = train_test_split(&ds, 0.3, 3).unwrap();
        let mut all: Vec<f64> = train
            .column(0)
            .unwrap()
            .iter()
            .chain(test.column(0).unwrap())
            .copied()
            .collect();
        all.sort_by(|a, b| a.partial_cmp(b).unwrap());
        assert_eq!(all, (0..50).map(|i| i as f64).collect::<Vec<_>>());
    }

    #[test]
    fn invalid_fraction_rejected() {
        let ds = labeled(10);
        assert!(train_test_split(&ds, 1.0, 0).is_err());
        assert!(train_test_split(&ds, -0.1, 0).is_err());
    }

    #[test]
    fn three_way_split_paper_protocol() {
        let ds = labeled(100);
        let split = train_valid_test_split(&ds, 60, 20, 20, 5).unwrap();
        assert_eq!(split.train.n_rows(), 60);
        assert_eq!(split.valid.as_ref().unwrap().n_rows(), 20);
        assert_eq!(split.test.n_rows(), 20);
    }

    #[test]
    fn zero_valid_gives_none_and_train_fallback() {
        let ds = labeled(100);
        let split = train_valid_test_split(&ds, 70, 0, 30, 5).unwrap();
        assert!(split.valid.is_none());
        assert_eq!(split.valid_or_train().n_rows(), 70);
    }

    #[test]
    fn oversized_split_rejected() {
        let ds = labeled(10);
        assert!(train_valid_test_split(&ds, 8, 2, 2, 0).is_err());
    }

    #[test]
    fn stratified_kfold_preserves_rate() {
        let labels: Vec<u8> = (0..90).map(|i| (i < 30) as u8).collect();
        let folds = stratified_kfold(&labels, 3, 11);
        assert_eq!(folds.len(), 3);
        for (train, test) in &folds {
            assert_eq!(train.len() + test.len(), 90);
            let pos = test.iter().filter(|&&i| labels[i] == 1).count();
            assert_eq!(pos, 10, "each fold should hold a third of positives");
        }
    }
}
