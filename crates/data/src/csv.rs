//! Minimal CSV reader/writer for labeled numeric tables.
//!
//! Industrial SAFE ingests data from a feature store; this reproduction reads
//! plain CSV: a header row of feature names, numeric cells, an optional label
//! column (named `label` by convention), and empty cells / `NA` / `nan`
//! parsed as missing (`f64::NAN`). RFC-4180-style double-quoting is
//! supported for header cells — engineered feature names like `mul(x0,x1)`
//! contain commas, so the writer quotes them and the reader unquotes.

use std::fs::File;
use std::io::{BufRead, BufReader, BufWriter, Read, Write};
use std::path::Path;

use crate::chunk::{ChunkOptions, ChunkStoreBuilder};
use crate::dataset::{Dataset, FeatureMeta};
use crate::error::DataError;

/// Split one CSV line with RFC-4180 double-quote handling: `"a,b"` is one
/// cell `a,b`, doubled quotes inside a quoted cell unescape to one quote.
fn split_line(line: &str) -> Vec<String> {
    let mut cells = Vec::new();
    let mut current = String::new();
    let mut in_quotes = false;
    let mut chars = line.chars().peekable();
    while let Some(c) = chars.next() {
        match c {
            '"' if in_quotes => {
                if chars.peek() == Some(&'"') {
                    chars.next();
                    current.push('"');
                } else {
                    in_quotes = false;
                }
            }
            '"' if current.is_empty() => in_quotes = true,
            ',' if !in_quotes => {
                cells.push(std::mem::take(&mut current));
            }
            other => current.push(other),
        }
    }
    cells.push(current);
    cells
}

/// Quote a header cell when it contains a comma or quote.
fn quote_cell(name: &str) -> String {
    if name.contains(',') || name.contains('"') {
        format!("\"{}\"", name.replace('"', "\"\""))
    } else {
        name.to_string()
    }
}

/// Parse one cell: empty, `NA`, `NaN` (any case) → NaN; otherwise f64.
fn parse_cell(token: &str, line: usize) -> Result<f64, DataError> {
    let t = token.trim();
    if t.is_empty() || t.eq_ignore_ascii_case("na") || t.eq_ignore_ascii_case("nan") {
        return Ok(f64::NAN);
    }
    t.parse::<f64>().map_err(|_| DataError::Csv {
        line,
        message: format!("cannot parse '{t}' as a number"),
    })
}

/// Incremental CSV row parser shared by the resident reader
/// ([`read_csv_str`]) and the streaming out-of-core reader
/// ([`read_csv_chunked`]). Both paths run the exact same header handling,
/// cell parsing, and validation, so streamed ingest is byte-identical to
/// materialized ingest by construction.
struct RowParser {
    names: Vec<String>,
    label_idx: Option<usize>,
    features: Vec<f64>,
    n_labels: usize,
}

impl RowParser {
    fn new(header: &str, label_column: Option<&str>) -> Result<RowParser, DataError> {
        let names: Vec<String> = split_line(header)
            .into_iter()
            .map(|s| s.trim().to_string())
            .collect();
        let label_idx = match label_column {
            Some(name) => Some(
                names
                    .iter()
                    .position(|n| n == name)
                    .ok_or_else(|| DataError::UnknownFeature(name.to_string()))?,
            ),
            None => None,
        };
        Ok(RowParser {
            names,
            label_idx,
            features: Vec::new(),
            n_labels: 0,
        })
    }

    fn n_features(&self) -> usize {
        self.names.len() - usize::from(self.label_idx.is_some())
    }

    fn feature_names(&self) -> Vec<String> {
        self.names
            .iter()
            .enumerate()
            .filter(|(j, _)| Some(*j) != self.label_idx)
            .map(|(_, n)| n.clone())
            .collect()
    }

    /// Parse one data line. `Ok(None)` for blank lines; otherwise the
    /// feature cells (valid until the next call) and the label cell.
    fn parse_line(
        &mut self,
        line: &str,
        line_no: usize,
    ) -> Result<Option<(&[f64], Option<u8>)>, DataError> {
        if line.trim().is_empty() {
            return Ok(None);
        }
        let cells: Vec<String> = split_line(line);
        if cells.len() != self.names.len() {
            return Err(DataError::Csv {
                line: line_no,
                message: format!("expected {} cells, found {}", self.names.len(), cells.len()),
            });
        }
        self.features.clear();
        let mut label = None;
        for (j, cell) in cells.iter().map(|c| c.as_str()).enumerate() {
            if Some(j) == self.label_idx {
                let v = parse_cell(cell, line_no)?;
                if v != 0.0 && v != 1.0 {
                    return Err(DataError::InvalidLabel {
                        row: self.n_labels,
                        value: v,
                    });
                }
                self.n_labels += 1;
                label = Some(v as u8);
            } else {
                self.features.push(parse_cell(cell, line_no)?);
            }
        }
        Ok(Some((&self.features, label)))
    }
}

/// Read a dataset from CSV text. If `label_column` is `Some(name)` that
/// column is pulled out as binary labels (cells must be 0 or 1).
pub fn read_csv_str(content: &str, label_column: Option<&str>) -> Result<Dataset, DataError> {
    let mut lines = content.lines().enumerate();
    let (_, header) = lines.next().ok_or(DataError::Csv {
        line: 1,
        message: "empty file".into(),
    })?;
    let mut parser = RowParser::new(header, label_column)?;
    let mut columns: Vec<Vec<f64>> = vec![Vec::new(); parser.n_features()];
    let mut labels: Vec<u8> = Vec::new();

    for (i, line) in lines {
        let line_no = i + 1;
        if let Some((features, label)) = parser.parse_line(line, line_no)? {
            for (c, &v) in features.iter().enumerate() {
                columns[c].push(v);
            }
            if let Some(l) = label {
                labels.push(l);
            }
        }
    }

    let has_labels = parser.label_idx.is_some();
    let feature_names = parser.feature_names();
    let n_rows = columns.first().map(|c| c.len()).unwrap_or(0);
    let mut ds = Dataset::with_rows(n_rows);
    for (name, col) in feature_names.into_iter().zip(columns) {
        ds.push_column(FeatureMeta::original(name), col)?;
    }
    if has_labels {
        ds.set_labels(labels)?;
    }
    Ok(ds)
}

/// Read a dataset from a CSV file on disk.
pub fn read_csv(path: impl AsRef<Path>, label_column: Option<&str>) -> Result<Dataset, DataError> {
    let mut file = File::open(path)?;
    let mut content = String::new();
    file.read_to_string(&mut content)?;
    read_csv_str(&content, label_column)
}

/// Stream a CSV file into a chunked [`Dataset`] without ever materializing
/// the full table: each parsed row goes straight into a
/// [`ChunkStoreBuilder`], which holds at most one chunk of staging data and
/// spills finished chunks under `opts.spill_dir`. Labels (1 byte/row) stay
/// resident.
///
/// Parsing is byte-identical to [`read_csv`]-then-[`Dataset`]: both paths
/// share one row parser, and `BufRead::lines` strips `\n`/`\r\n` exactly
/// like the `str::lines` call the resident reader uses (pinned by the
/// streaming-ingest differential tests).
pub fn read_csv_chunked(
    path: impl AsRef<Path>,
    label_column: Option<&str>,
    opts: ChunkOptions,
) -> Result<Dataset, DataError> {
    let file = File::open(path)?;
    let mut lines = BufReader::new(file).lines();
    let header = lines.next().transpose()?.ok_or(DataError::Csv {
        line: 1,
        message: "empty file".into(),
    })?;
    let mut parser = RowParser::new(&header, label_column)?;
    let mut builder = ChunkStoreBuilder::new(parser.n_features(), opts)?;
    let mut labels: Vec<u8> = Vec::new();
    for (i, line) in lines.enumerate() {
        let line_no = i + 2; // physical line number; header was line 1
        let line = line?;
        if let Some((features, label)) = parser.parse_line(&line, line_no)? {
            builder.push_row(features)?;
            if let Some(l) = label {
                labels.push(l);
            }
        }
    }
    let has_labels = parser.label_idx.is_some();
    let names = parser.feature_names();
    Dataset::from_chunk_store(names, builder.finish()?, has_labels.then_some(labels))
}

/// Append the CSV header and all data rows of `ds` to `out`, iterating the
/// table chunk-wise — works on both backends without materializing spilled
/// columns beyond one chunk at a time.
fn write_csv_into(ds: &Dataset, out: &mut String) -> Result<(), DataError> {
    let names: Vec<String> = ds
        .feature_names()
        .iter()
        .map(|n| quote_cell(n))
        .collect();
    out.push_str(&names.join(","));
    if ds.labels().is_some() {
        out.push_str(",label");
    }
    out.push('\n');
    let labels = ds.labels();
    ds.for_each_row_chunk(&mut |range, cols| {
        for (r, i) in range.enumerate() {
            let cells: Vec<String> = cols
                .iter()
                .map(|col| {
                    let v = col[r];
                    if v.is_finite() {
                        // Shortest round-trippable representation.
                        format!("{v}")
                    } else {
                        String::new()
                    }
                })
                .collect();
            out.push_str(&cells.join(","));
            if let Some(labels) = labels {
                out.push(',');
                out.push_str(if labels[i] == 1 { "1" } else { "0" });
            }
            out.push('\n');
        }
    })
}

/// Serialize a dataset to CSV text. Labels, when present, are written as a
/// trailing `label` column. NaN is written as an empty cell.
pub fn write_csv_string(ds: &Dataset) -> String {
    let mut out = String::new();
    // The only failure mode is spill I/O on a chunked backend; surface it
    // as a truncated document rather than a panic (callers that care about
    // out-of-core data use `write_csv`, which propagates the error).
    let _ = write_csv_into(ds, &mut out);
    out
}

/// Write a dataset to a CSV file (both backends; spilled columns stream
/// through chunk-wise).
pub fn write_csv(ds: &Dataset, path: impl AsRef<Path>) -> Result<(), DataError> {
    let file = File::create(path)?;
    let mut writer = BufWriter::new(file);
    let mut out = String::new();
    write_csv_into(ds, &mut out)?;
    writer.write_all(out.as_bytes())?;
    writer.flush()?;
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_labeled_csv() {
        let text = "a,b,label\n1.0,2.5,0\n3,4,1\n";
        let ds = read_csv_str(text, Some("label")).unwrap();
        assert_eq!(ds.n_rows(), 2);
        assert_eq!(ds.feature_names(), vec!["a", "b"]);
        assert_eq!(ds.column(0).unwrap(), &[1.0, 3.0]);
        assert_eq!(ds.labels().unwrap(), &[0, 1]);
    }

    #[test]
    fn label_column_can_be_interior() {
        let text = "a,label,b\n1,1,2\n3,0,4\n";
        let ds = read_csv_str(text, Some("label")).unwrap();
        assert_eq!(ds.feature_names(), vec!["a", "b"]);
        assert_eq!(ds.column(1).unwrap(), &[2.0, 4.0]);
        assert_eq!(ds.labels().unwrap(), &[1, 0]);
    }

    #[test]
    fn missing_values_parse_as_nan() {
        let text = "a,b\n1,\nNA,2\nnan,3\n";
        let ds = read_csv_str(text, None).unwrap();
        assert!(ds.column(1).unwrap()[0].is_nan());
        assert!(ds.column(0).unwrap()[1].is_nan());
        assert!(ds.column(0).unwrap()[2].is_nan());
        assert!(ds.labels().is_none());
    }

    #[test]
    fn bad_number_reports_line() {
        let text = "a\n1\nbogus\n";
        let err = read_csv_str(text, None).unwrap_err();
        match err {
            DataError::Csv { line, .. } => assert_eq!(line, 3),
            other => panic!("unexpected error {other:?}"),
        }
    }

    #[test]
    fn ragged_row_rejected() {
        let text = "a,b\n1,2\n3\n";
        assert!(matches!(
            read_csv_str(text, None).unwrap_err(),
            DataError::Csv { line: 3, .. }
        ));
    }

    #[test]
    fn non_binary_label_rejected() {
        let text = "a,label\n1,2\n";
        assert!(matches!(
            read_csv_str(text, Some("label")).unwrap_err(),
            DataError::InvalidLabel { .. }
        ));
    }

    #[test]
    fn missing_label_column_rejected() {
        let text = "a,b\n1,2\n";
        assert!(matches!(
            read_csv_str(text, Some("y")).unwrap_err(),
            DataError::UnknownFeature(_)
        ));
    }

    #[test]
    fn round_trip_preserves_data() {
        let text = "a,b,label\n1,2,0\n,4,1\n";
        let ds = read_csv_str(text, Some("label")).unwrap();
        let written = write_csv_string(&ds);
        let back = read_csv_str(&written, Some("label")).unwrap();
        assert_eq!(back.n_rows(), ds.n_rows());
        assert_eq!(back.labels(), ds.labels());
        assert_eq!(back.column(1).unwrap(), ds.column(1).unwrap());
        assert!(back.column(0).unwrap()[1].is_nan());
    }

    #[test]
    fn file_round_trip() {
        let dir = std::env::temp_dir().join("safe_data_csv_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("t.csv");
        let ds = read_csv_str("a,label\n1,0\n2,1\n", Some("label")).unwrap();
        write_csv(&ds, &path).unwrap();
        let back = read_csv(&path, Some("label")).unwrap();
        assert_eq!(back, ds);
    }

    #[test]
    fn empty_file_is_an_error() {
        assert!(read_csv_str("", None).is_err());
    }
}

#[cfg(test)]
mod streaming_tests {
    use super::*;
    use crate::chunk::ChunkOptions;
    use crate::column::ColumnRead;

    fn tmp_csv(name: &str, text: &str) -> std::path::PathBuf {
        let dir = std::env::temp_dir().join("safe_data_csv_stream_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join(name);
        std::fs::write(&path, text.as_bytes()).unwrap();
        path
    }

    /// Bit-level comparison of a streamed chunked ingest against the
    /// resident reader: same shape, names, labels, and per-column value
    /// bits (NaN == NaN at the bit level, which `PartialEq` can't see).
    fn assert_ingest_identical(text: &str, label: Option<&str>, opts: ChunkOptions) {
        let path = tmp_csv("ingest.csv", text);
        let resident = read_csv(&path, label).unwrap();
        let chunked = read_csv_chunked(&path, label, opts).unwrap();
        assert_eq!(chunked.n_rows(), resident.n_rows());
        assert_eq!(chunked.feature_names(), resident.feature_names());
        assert_eq!(chunked.labels(), resident.labels());
        let mut a = Vec::new();
        let mut b = Vec::new();
        for c in 0..resident.n_cols() {
            resident.column_view(c).unwrap().gather_into(&mut a).unwrap();
            chunked.column_view(c).unwrap().gather_into(&mut b).unwrap();
            let a_bits: Vec<u64> = a.iter().map(|v| v.to_bits()).collect();
            let b_bits: Vec<u64> = b.iter().map(|v| v.to_bits()).collect();
            assert_eq!(a_bits, b_bits, "column {c} bytes differ");
        }
    }

    #[test]
    fn streamed_ingest_matches_resident_reader() {
        let text = "a,b,label\n1.0,2.5,0\n3,4,1\n-0.125,9e3,0\n0.1,0.2,1\n7,8,0\n";
        assert_ingest_identical(text, Some("label"), ChunkOptions::in_memory(2));
    }

    #[test]
    fn streamed_ingest_handles_nan_and_missing_cells() {
        let text = "a,b\n1,\nNA,2\nnan,3\n,\n5,NaN\n";
        assert_ingest_identical(text, None, ChunkOptions::in_memory(2));
    }

    #[test]
    fn streamed_ingest_handles_crlf_endings() {
        let text = "a,b,label\r\n1,2,0\r\n3,,1\r\nNA,4,0\r\n";
        assert_ingest_identical(text, Some("label"), ChunkOptions::in_memory(2));
    }

    #[test]
    fn streamed_ingest_with_spill_round_trips() {
        let spill = std::env::temp_dir().join("safe_data_csv_stream_spill");
        std::fs::create_dir_all(&spill).unwrap();
        let mut text = String::from("x,y,label\n");
        for i in 0..100 {
            text.push_str(&format!("{},{},{}\n", i, (i * 7 % 13) as f64 * 0.5, i % 2));
        }
        assert_ingest_identical(&text, Some("label"), ChunkOptions::spilled(8, 2, &spill));
    }

    #[test]
    fn streamed_ingest_reports_same_errors() {
        for text in ["a,b\n1,2\n3\n", "a\n1\nbogus\n", "a,label\n1,2\n", ""] {
            let path = tmp_csv("err.csv", text);
            let resident = read_csv(&path, text.contains("label").then_some("label"));
            let streamed = read_csv_chunked(
                &path,
                text.contains("label").then_some("label"),
                ChunkOptions::in_memory(4),
            );
            assert_eq!(
                resident.unwrap_err(),
                streamed.unwrap_err(),
                "error mismatch for {text:?}"
            );
        }
    }

    #[test]
    fn chunked_dataset_writes_same_csv_bytes() {
        let text = "a,b,label\n1,2,0\n,4,1\n5.5,6,0\n";
        let path = tmp_csv("write.csv", text);
        let resident = read_csv(&path, Some("label")).unwrap();
        let chunked = read_csv_chunked(&path, Some("label"), ChunkOptions::in_memory(2)).unwrap();
        assert_eq!(write_csv_string(&chunked), write_csv_string(&resident));
    }
}

#[cfg(test)]
mod quoting_tests {
    use super::*;
    use crate::dataset::{Dataset, FeatureMeta};

    #[test]
    fn split_line_handles_quoted_commas() {
        assert_eq!(split_line("a,b,c"), vec!["a", "b", "c"]);
        assert_eq!(split_line(r#""mul(x0,x1)",b"#), vec!["mul(x0,x1)", "b"]);
        assert_eq!(split_line(r#""say ""hi""",2"#), vec![r#"say "hi""#, "2"]);
        assert_eq!(split_line(""), vec![""]);
    }

    #[test]
    fn quote_cell_round_trips() {
        for name in ["plain", "mul(x0,x1)", "we\"ird"] {
            let quoted = quote_cell(name);
            assert_eq!(split_line(&quoted), vec![name.to_string()]);
        }
    }

    #[test]
    fn engineered_names_survive_csv_round_trip() {
        let mut ds = Dataset::with_rows(2);
        ds.push_column(FeatureMeta::original("x0"), vec![1.0, 2.0]).unwrap();
        ds.push_column(
            FeatureMeta::generated("mul(x0,x1)", "mul", vec!["x0".into(), "x1".into()]),
            vec![3.0, 4.0],
        )
        .unwrap();
        ds.set_labels(vec![0, 1]).unwrap();
        let text = write_csv_string(&ds);
        let back = read_csv_str(&text, Some("label")).unwrap();
        assert_eq!(back.feature_names(), vec!["x0", "mul(x0,x1)"]);
        assert_eq!(back.column(1).unwrap(), &[3.0, 4.0]);
    }
}
