//! Minimal CSV reader/writer for labeled numeric tables.
//!
//! Industrial SAFE ingests data from a feature store; this reproduction reads
//! plain CSV: a header row of feature names, numeric cells, an optional label
//! column (named `label` by convention), and empty cells / `NA` / `nan`
//! parsed as missing (`f64::NAN`). RFC-4180-style double-quoting is
//! supported for header cells — engineered feature names like `mul(x0,x1)`
//! contain commas, so the writer quotes them and the reader unquotes.

use std::fs::File;
use std::io::{BufWriter, Read, Write};
use std::path::Path;

use crate::dataset::{Dataset, FeatureMeta};
use crate::error::DataError;

/// Split one CSV line with RFC-4180 double-quote handling: `"a,b"` is one
/// cell `a,b`, doubled quotes inside a quoted cell unescape to one quote.
fn split_line(line: &str) -> Vec<String> {
    let mut cells = Vec::new();
    let mut current = String::new();
    let mut in_quotes = false;
    let mut chars = line.chars().peekable();
    while let Some(c) = chars.next() {
        match c {
            '"' if in_quotes => {
                if chars.peek() == Some(&'"') {
                    chars.next();
                    current.push('"');
                } else {
                    in_quotes = false;
                }
            }
            '"' if current.is_empty() => in_quotes = true,
            ',' if !in_quotes => {
                cells.push(std::mem::take(&mut current));
            }
            other => current.push(other),
        }
    }
    cells.push(current);
    cells
}

/// Quote a header cell when it contains a comma or quote.
fn quote_cell(name: &str) -> String {
    if name.contains(',') || name.contains('"') {
        format!("\"{}\"", name.replace('"', "\"\""))
    } else {
        name.to_string()
    }
}

/// Parse one cell: empty, `NA`, `NaN` (any case) → NaN; otherwise f64.
fn parse_cell(token: &str, line: usize) -> Result<f64, DataError> {
    let t = token.trim();
    if t.is_empty() || t.eq_ignore_ascii_case("na") || t.eq_ignore_ascii_case("nan") {
        return Ok(f64::NAN);
    }
    t.parse::<f64>().map_err(|_| DataError::Csv {
        line,
        message: format!("cannot parse '{t}' as a number"),
    })
}

/// Read a dataset from CSV text. If `label_column` is `Some(name)` that
/// column is pulled out as binary labels (cells must be 0 or 1).
pub fn read_csv_str(content: &str, label_column: Option<&str>) -> Result<Dataset, DataError> {
    let mut lines = content.lines().enumerate();
    let (_, header) = lines.next().ok_or(DataError::Csv {
        line: 1,
        message: "empty file".into(),
    })?;
    let names: Vec<String> = split_line(header)
        .into_iter()
        .map(|s| s.trim().to_string())
        .collect();
    let label_idx = match label_column {
        Some(name) => Some(
            names
                .iter()
                .position(|n| n == name)
                .ok_or_else(|| DataError::UnknownFeature(name.to_string()))?,
        ),
        None => None,
    };

    let n_features = names.len() - usize::from(label_idx.is_some());
    let mut columns: Vec<Vec<f64>> = vec![Vec::new(); n_features];
    let mut labels: Vec<u8> = Vec::new();

    for (i, line) in lines {
        let line_no = i + 1;
        if line.trim().is_empty() {
            continue;
        }
        let cells: Vec<String> = split_line(line);
        if cells.len() != names.len() {
            return Err(DataError::Csv {
                line: line_no,
                message: format!("expected {} cells, found {}", names.len(), cells.len()),
            });
        }
        let mut c = 0;
        for (j, cell) in cells.iter().map(|c| c.as_str()).enumerate() {
            if Some(j) == label_idx {
                let v = parse_cell(cell, line_no)?;
                if v != 0.0 && v != 1.0 {
                    return Err(DataError::InvalidLabel {
                        row: labels.len(),
                        value: v,
                    });
                }
                labels.push(v as u8);
            } else {
                columns[c].push(parse_cell(cell, line_no)?);
                c += 1;
            }
        }
    }

    let feature_names: Vec<String> = names
        .iter()
        .enumerate()
        .filter(|(j, _)| Some(*j) != label_idx)
        .map(|(_, n)| n.clone())
        .collect();
    let n_rows = columns.first().map(|c| c.len()).unwrap_or(0);
    let mut ds = Dataset::with_rows(n_rows);
    for (name, col) in feature_names.into_iter().zip(columns) {
        ds.push_column(FeatureMeta::original(name), col)?;
    }
    if label_idx.is_some() {
        ds.set_labels(labels)?;
    }
    Ok(ds)
}

/// Read a dataset from a CSV file on disk.
pub fn read_csv(path: impl AsRef<Path>, label_column: Option<&str>) -> Result<Dataset, DataError> {
    let mut file = File::open(path)?;
    let mut content = String::new();
    file.read_to_string(&mut content)?;
    read_csv_str(&content, label_column)
}

/// Serialize a dataset to CSV text. Labels, when present, are written as a
/// trailing `label` column. NaN is written as an empty cell.
pub fn write_csv_string(ds: &Dataset) -> String {
    let mut out = String::new();
    let names: Vec<String> = ds
        .feature_names()
        .iter()
        .map(|n| quote_cell(n))
        .collect();
    out.push_str(&names.join(","));
    if ds.labels().is_some() {
        out.push_str(",label");
    }
    out.push('\n');
    for i in 0..ds.n_rows() {
        let row = ds.row(i);
        let cells: Vec<String> = row
            .iter()
            .map(|v| {
                if v.is_finite() {
                    // Shortest round-trippable representation.
                    format!("{v}")
                } else {
                    String::new()
                }
            })
            .collect();
        out.push_str(&cells.join(","));
        if let Some(labels) = ds.labels() {
            out.push(',');
            out.push_str(if labels[i] == 1 { "1" } else { "0" });
        }
        out.push('\n');
    }
    out
}

/// Write a dataset to a CSV file.
pub fn write_csv(ds: &Dataset, path: impl AsRef<Path>) -> Result<(), DataError> {
    let file = File::create(path)?;
    let mut writer = BufWriter::new(file);
    writer.write_all(write_csv_string(ds).as_bytes())?;
    writer.flush()?;
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_labeled_csv() {
        let text = "a,b,label\n1.0,2.5,0\n3,4,1\n";
        let ds = read_csv_str(text, Some("label")).unwrap();
        assert_eq!(ds.n_rows(), 2);
        assert_eq!(ds.feature_names(), vec!["a", "b"]);
        assert_eq!(ds.column(0).unwrap(), &[1.0, 3.0]);
        assert_eq!(ds.labels().unwrap(), &[0, 1]);
    }

    #[test]
    fn label_column_can_be_interior() {
        let text = "a,label,b\n1,1,2\n3,0,4\n";
        let ds = read_csv_str(text, Some("label")).unwrap();
        assert_eq!(ds.feature_names(), vec!["a", "b"]);
        assert_eq!(ds.column(1).unwrap(), &[2.0, 4.0]);
        assert_eq!(ds.labels().unwrap(), &[1, 0]);
    }

    #[test]
    fn missing_values_parse_as_nan() {
        let text = "a,b\n1,\nNA,2\nnan,3\n";
        let ds = read_csv_str(text, None).unwrap();
        assert!(ds.column(1).unwrap()[0].is_nan());
        assert!(ds.column(0).unwrap()[1].is_nan());
        assert!(ds.column(0).unwrap()[2].is_nan());
        assert!(ds.labels().is_none());
    }

    #[test]
    fn bad_number_reports_line() {
        let text = "a\n1\nbogus\n";
        let err = read_csv_str(text, None).unwrap_err();
        match err {
            DataError::Csv { line, .. } => assert_eq!(line, 3),
            other => panic!("unexpected error {other:?}"),
        }
    }

    #[test]
    fn ragged_row_rejected() {
        let text = "a,b\n1,2\n3\n";
        assert!(matches!(
            read_csv_str(text, None).unwrap_err(),
            DataError::Csv { line: 3, .. }
        ));
    }

    #[test]
    fn non_binary_label_rejected() {
        let text = "a,label\n1,2\n";
        assert!(matches!(
            read_csv_str(text, Some("label")).unwrap_err(),
            DataError::InvalidLabel { .. }
        ));
    }

    #[test]
    fn missing_label_column_rejected() {
        let text = "a,b\n1,2\n";
        assert!(matches!(
            read_csv_str(text, Some("y")).unwrap_err(),
            DataError::UnknownFeature(_)
        ));
    }

    #[test]
    fn round_trip_preserves_data() {
        let text = "a,b,label\n1,2,0\n,4,1\n";
        let ds = read_csv_str(text, Some("label")).unwrap();
        let written = write_csv_string(&ds);
        let back = read_csv_str(&written, Some("label")).unwrap();
        assert_eq!(back.n_rows(), ds.n_rows());
        assert_eq!(back.labels(), ds.labels());
        assert_eq!(back.column(1).unwrap(), ds.column(1).unwrap());
        assert!(back.column(0).unwrap()[1].is_nan());
    }

    #[test]
    fn file_round_trip() {
        let dir = std::env::temp_dir().join("safe_data_csv_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("t.csv");
        let ds = read_csv_str("a,label\n1,0\n2,1\n", Some("label")).unwrap();
        write_csv(&ds, &path).unwrap();
        let back = read_csv(&path, Some("label")).unwrap();
        assert_eq!(back, ds);
    }

    #[test]
    fn empty_file_is_an_error() {
        assert!(read_csv_str("", None).is_err());
    }
}

#[cfg(test)]
mod quoting_tests {
    use super::*;
    use crate::dataset::{Dataset, FeatureMeta};

    #[test]
    fn split_line_handles_quoted_commas() {
        assert_eq!(split_line("a,b,c"), vec!["a", "b", "c"]);
        assert_eq!(split_line(r#""mul(x0,x1)",b"#), vec!["mul(x0,x1)", "b"]);
        assert_eq!(split_line(r#""say ""hi""",2"#), vec![r#"say "hi""#, "2"]);
        assert_eq!(split_line(""), vec![""]);
    }

    #[test]
    fn quote_cell_round_trips() {
        for name in ["plain", "mul(x0,x1)", "we\"ird"] {
            let quoted = quote_cell(name);
            assert_eq!(split_line(&quoted), vec![name.to_string()]);
        }
    }

    #[test]
    fn engineered_names_survive_csv_round_trip() {
        let mut ds = Dataset::with_rows(2);
        ds.push_column(FeatureMeta::original("x0"), vec![1.0, 2.0]).unwrap();
        ds.push_column(
            FeatureMeta::generated("mul(x0,x1)", "mul", vec!["x0".into(), "x1".into()]),
            vec![3.0, 4.0],
        )
        .unwrap();
        ds.set_labels(vec![0, 1]).unwrap();
        let text = write_csv_string(&ds);
        let back = read_csv_str(&text, Some("label")).unwrap();
        assert_eq!(back.feature_names(), vec!["x0", "mul(x0,x1)"]);
        assert_eq!(back.column(1).unwrap(), &[3.0, 4.0]);
    }
}
