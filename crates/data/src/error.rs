//! Error type shared by the data layer.

use std::fmt;

/// Errors produced by dataset construction, I/O and binning.
#[derive(Debug, Clone, PartialEq)]
pub enum DataError {
    /// A column had a different length than the dataset's row count.
    ColumnLengthMismatch {
        /// Name of the offending column.
        name: String,
        /// Expected number of rows.
        expected: usize,
        /// Actual number of rows provided.
        actual: usize,
    },
    /// Labels vector length did not match the row count.
    LabelLengthMismatch {
        /// Expected number of rows.
        expected: usize,
        /// Actual label count.
        actual: usize,
    },
    /// A label value other than 0 or 1 was supplied.
    InvalidLabel {
        /// Row index of the bad label.
        row: usize,
        /// The raw value encountered.
        value: f64,
    },
    /// A row-major input row had the wrong number of fields. Distinct from
    /// [`DataError::Csv`]: no parser is involved, the caller handed over a
    /// ragged row directly.
    RowShapeMismatch {
        /// 0-based index of the offending row.
        row: usize,
        /// Expected field count (the dataset's column count).
        expected: usize,
        /// Actual field count provided.
        actual: usize,
    },
    /// A feature name was used twice.
    DuplicateFeature(String),
    /// A raw-slice accessor (`column`, `columns`) was called on a column
    /// whose storage is chunked/spilled; use the `ColumnRead` views.
    ColumnNotResident(String),
    /// Requested feature does not exist.
    UnknownFeature(String),
    /// Column index out of range.
    ColumnOutOfRange {
        /// The requested index.
        index: usize,
        /// Number of columns available.
        len: usize,
    },
    /// The operation requires a non-empty dataset.
    EmptyDataset,
    /// Binning was asked for zero bins.
    ZeroBins,
    /// CSV parsing failed.
    Csv {
        /// 1-based line number.
        line: usize,
        /// Human-readable description.
        message: String,
    },
    /// Underlying I/O failure (message only, to keep the error `Clone`).
    Io(String),
    /// A split fraction was outside (0, 1) or fractions summed past 1.
    InvalidSplit(String),
    /// A fault-injection point fired (tests only; see the `failpoints`
    /// feature). Carries the failpoint name.
    Injected(&'static str),
}

impl fmt::Display for DataError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DataError::ColumnLengthMismatch {
                name,
                expected,
                actual,
            } => write!(
                f,
                "column '{name}' has {actual} rows but dataset has {expected}"
            ),
            DataError::LabelLengthMismatch { expected, actual } => {
                write!(f, "labels have {actual} entries but dataset has {expected} rows")
            }
            DataError::InvalidLabel { row, value } => {
                write!(f, "label at row {row} is {value}, expected 0 or 1")
            }
            DataError::RowShapeMismatch { row, expected, actual } => {
                write!(f, "row {row} has {actual} fields, expected {expected}")
            }
            DataError::DuplicateFeature(name) => write!(f, "duplicate feature name '{name}'"),
            DataError::ColumnNotResident(name) => write!(
                f,
                "column '{name}' is chunked/spilled; use ColumnRead views instead of raw slices"
            ),
            DataError::UnknownFeature(name) => write!(f, "unknown feature '{name}'"),
            DataError::ColumnOutOfRange { index, len } => {
                write!(f, "column index {index} out of range (dataset has {len})")
            }
            DataError::EmptyDataset => write!(f, "operation requires a non-empty dataset"),
            DataError::ZeroBins => write!(f, "number of bins must be at least 1"),
            DataError::Csv { line, message } => write!(f, "csv parse error at line {line}: {message}"),
            DataError::Io(msg) => write!(f, "io error: {msg}"),
            DataError::InvalidSplit(msg) => write!(f, "invalid split: {msg}"),
            DataError::Injected(name) => write!(f, "injected fault at '{name}'"),
        }
    }
}

impl std::error::Error for DataError {}

impl From<std::io::Error> for DataError {
    fn from(e: std::io::Error) -> Self {
        DataError::Io(e.to_string())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_informative() {
        let e = DataError::ColumnLengthMismatch {
            name: "age".into(),
            expected: 10,
            actual: 9,
        };
        let msg = e.to_string();
        assert!(msg.contains("age"));
        assert!(msg.contains("10"));
        assert!(msg.contains('9'));
    }

    #[test]
    fn io_error_converts() {
        let io = std::io::Error::new(std::io::ErrorKind::NotFound, "gone");
        let e: DataError = io.into();
        assert!(matches!(e, DataError::Io(_)));
        assert!(e.to_string().contains("gone"));
    }

    #[test]
    fn errors_are_cloneable_and_comparable() {
        let a = DataError::ZeroBins;
        let b = a.clone();
        assert_eq!(a, b);
    }
}
