//! # safe-data — columnar dataset substrate for the SAFE reproduction
//!
//! Every stage of the SAFE pipeline (feature generation, information-value
//! filtering, redundancy removal, model training) operates column-wise, so the
//! central [`Dataset`] type stores features **column-major**: one contiguous
//! `Vec<f64>` per feature. Labels are binary (`0`/`1`) as in the paper's
//! fraud-detection and benchmark tasks.
//!
//! The crate also provides:
//! - deterministic shuffling and train/valid/test [`split`]ting (plain and
//!   stratified),
//! - a small dependency-free [`csv`] reader/writer,
//! - equal-frequency / equal-width [`binning`] used by the Information Value
//!   computation (Algorithm 3 of the paper) and by discretization operators.
//!
//! Missing values are represented as `f64::NAN` and handled explicitly by the
//! binning and statistics layers.
//!
//! Out-of-core backend (DESIGN.md §16):
//! - [`chunk`] — fixed-size row chunks with file-backed spill segments and
//!   an LRU of decoded chunks,
//! - [`column`] — the [`ColumnRead`] trait / [`ColumnView`] access surface
//!   the hot paths consume instead of raw `&[f64]` slices,
//! - [`csv::read_csv_chunked`] — streaming ingest that never materializes
//!   the full table.
//!
//! Robustness additions:
//! - [`audit`] — pre-flight scan for degenerate data (all-missing or
//!   constant columns, infinities, single-class labels) with
//!   reject/warn/repair policies,
//! - [`failpoints`] — feature-gated fault injection used by the
//!   degradation test-suite.

#![warn(missing_docs)]
#![warn(clippy::unwrap_used, clippy::expect_used)]
#![cfg_attr(test, allow(clippy::unwrap_used, clippy::expect_used))]

pub mod audit;
pub mod binning;
pub mod checksum;
pub mod chunk;
pub mod column;
pub mod csv;
pub mod dataset;
pub mod error;
pub mod failpoints;
pub mod split;

pub use audit::{
    audit, enforce, enforce_observed, AuditConfig, AuditError, AuditFinding, AuditPolicy,
    AuditReport, AuditSeverity, RepairAction,
};
pub use binning::{BinAssignments, BinEdges, BinStrategy};
pub use chunk::{ChunkOptions, ChunkStats, ChunkStore, ChunkStoreBuilder};
pub use column::{ColumnRead, ColumnView};
pub use dataset::{Dataset, FeatureMeta, FeatureOrigin};
pub use error::DataError;
pub use split::{train_test_split, train_valid_test_split, DatasetSplit};
