//! The redesigned column-access surface: chunk-aware reads with a
//! zero-cost whole-slice fast path.
//!
//! Hot paths used to consume `&[f64]` straight from the dataset, which
//! welded them to a fully resident backend. They now consume
//! [`ColumnRead`] — implemented by the borrowed [`ColumnView`] a
//! [`crate::dataset::Dataset`] hands out — and choose one of three access
//! patterns:
//!
//! 1. **Fast path:** [`ColumnRead::as_slice`] returns `Some` for resident
//!    columns; kernels that got a slice run exactly the code they always
//!    ran, at zero cost.
//! 2. **Streaming:** [`ColumnRead::for_each_chunk`] yields the column's
//!    values as consecutive sub-slices in ascending row order. A
//!    sequential left-fold over those slices visits elements in exactly
//!    full-slice order, so streamed reductions (moments, Pearson passes,
//!    audit scans) are bit-identical to their resident versions — f64
//!    addition is never reassociated by chunking.
//! 3. **Gather:** [`ColumnRead::gather_into`] / [`ColumnRead::materialize`]
//!    copy the column into caller scratch for kernels that genuinely need
//!    random access (sort-based binning, row-sampled pruning, operator
//!    application). The out-of-core contract is that *one column* of
//!    scratch fits in memory even when the full table does not.

use std::ops::Range;
use std::sync::Arc;

use crate::chunk::ChunkStore;
use crate::error::DataError;

/// Read access to one logical `f64` column, independent of whether its
/// storage is a resident vector or spill-backed chunks.
pub trait ColumnRead {
    /// Number of values in the column.
    fn len(&self) -> usize;

    /// True when the column has no values.
    fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The whole column as one slice, when storage is resident — the
    /// zero-cost fast path. Chunked columns return `None`.
    fn as_slice(&self) -> Option<&[f64]>;

    /// Stream the values in `range` as consecutive sub-slices, in
    /// ascending row order. Chunk boundaries are a pure function of the
    /// backing store's geometry — never of cache state — so iteration
    /// order is deterministic.
    fn for_each_chunk(
        &self,
        range: Range<usize>,
        f: &mut dyn FnMut(&[f64]),
    ) -> Result<(), DataError>;

    /// Copy the full column into `buf` (cleared first).
    fn gather_into(&self, buf: &mut Vec<f64>) -> Result<(), DataError> {
        buf.clear();
        if let Some(s) = self.as_slice() {
            buf.extend_from_slice(s);
            return Ok(());
        }
        buf.reserve(self.len());
        self.for_each_chunk(0..self.len(), &mut |c| buf.extend_from_slice(c))
    }

    /// The column as a contiguous slice: the resident slice when there is
    /// one, otherwise a gather into `scratch`. The caller owns `scratch`
    /// and can reuse it across columns to amortize the allocation.
    fn materialize<'s>(&'s self, scratch: &'s mut Vec<f64>) -> Result<&'s [f64], DataError> {
        if let Some(s) = self.as_slice() {
            return Ok(s);
        }
        self.gather_into(scratch)?;
        Ok(scratch.as_slice())
    }
}

impl ColumnRead for [f64] {
    fn len(&self) -> usize {
        <[f64]>::len(self)
    }

    fn as_slice(&self) -> Option<&[f64]> {
        Some(self)
    }

    fn for_each_chunk(
        &self,
        range: Range<usize>,
        f: &mut dyn FnMut(&[f64]),
    ) -> Result<(), DataError> {
        if range.end > <[f64]>::len(self) || range.start > range.end {
            return Err(DataError::ColumnOutOfRange {
                index: range.end,
                len: <[f64]>::len(self),
            });
        }
        if !range.is_empty() {
            f(&self[range]);
        }
        Ok(())
    }
}

/// A borrowed view of one dataset column: either a resident slice or a
/// (store, column) pair resolving through the chunk cache.
#[derive(Debug, Clone, Copy)]
pub enum ColumnView<'a> {
    /// Fully resident column.
    Slice(&'a [f64]),
    /// Column `col` of a chunked store.
    Chunked {
        /// Backing store.
        store: &'a Arc<ChunkStore>,
        /// Column index within the store.
        col: usize,
    },
}

impl ColumnRead for ColumnView<'_> {
    fn len(&self) -> usize {
        match self {
            ColumnView::Slice(s) => s.len(),
            ColumnView::Chunked { store, .. } => store.n_rows(),
        }
    }

    fn as_slice(&self) -> Option<&[f64]> {
        match self {
            ColumnView::Slice(s) => Some(s),
            ColumnView::Chunked { .. } => None,
        }
    }

    fn for_each_chunk(
        &self,
        range: Range<usize>,
        f: &mut dyn FnMut(&[f64]),
    ) -> Result<(), DataError> {
        match self {
            ColumnView::Slice(s) => s.for_each_chunk(range, f),
            ColumnView::Chunked { store, col } => store.for_each_col_chunk(*col, range, f),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::chunk::{ChunkOptions, ChunkStoreBuilder};

    fn chunked(values: &[f64], chunk_rows: usize) -> Arc<ChunkStore> {
        let mut b = ChunkStoreBuilder::new(1, ChunkOptions::in_memory(chunk_rows)).unwrap();
        for &v in values {
            b.push_row(&[v]).unwrap();
        }
        Arc::new(b.finish().unwrap())
    }

    #[test]
    fn slice_fast_path_is_zero_copy() {
        let data = [1.0, 2.0, 3.0];
        let view = ColumnView::Slice(&data);
        assert_eq!(view.as_slice().unwrap().as_ptr(), data.as_ptr());
        let mut scratch = Vec::new();
        let s = view.materialize(&mut scratch).unwrap();
        assert_eq!(s.as_ptr(), data.as_ptr(), "resident materialize must not copy");
        assert!(scratch.is_empty());
    }

    #[test]
    fn chunked_view_streams_in_row_order() {
        let values: Vec<f64> = (0..17).map(|i| i as f64).collect();
        let store = chunked(&values, 5);
        let view = ColumnView::Chunked { store: &store, col: 0 };
        assert!(view.as_slice().is_none());
        assert_eq!(view.len(), 17);
        let mut got = Vec::new();
        view.for_each_chunk(0..17, &mut |c| got.extend_from_slice(c)).unwrap();
        assert_eq!(got, values);
        let mut scratch = Vec::new();
        assert_eq!(view.materialize(&mut scratch).unwrap(), &values[..]);
    }

    #[test]
    fn streamed_fold_matches_slice_fold_bitwise() {
        // Chunked iteration must not reassociate f64 addition: a left-fold
        // over the yielded slices equals the slice fold bit for bit.
        let values: Vec<f64> = (0..1000).map(|i| (i as f64).sin() * 1e3).collect();
        let slice_sum: f64 = values.iter().sum();
        for chunk_rows in [1, 3, 64, 1000, 2048] {
            let store = chunked(&values, chunk_rows);
            let view = ColumnView::Chunked { store: &store, col: 0 };
            let mut sum = 0.0f64;
            view.for_each_chunk(0..values.len(), &mut |c| {
                for v in c {
                    sum += v;
                }
            })
            .unwrap();
            assert_eq!(sum.to_bits(), slice_sum.to_bits(), "chunk_rows={chunk_rows}");
        }
    }

    #[test]
    fn sub_range_iteration() {
        let values: Vec<f64> = (0..10).map(|i| i as f64).collect();
        let store = chunked(&values, 4);
        let view = ColumnView::Chunked { store: &store, col: 0 };
        let mut got = Vec::new();
        view.for_each_chunk(2..7, &mut |c| got.extend_from_slice(c)).unwrap();
        assert_eq!(got, &values[2..7]);
    }
}
