//! Fault-injection registry (active only with the `failpoints` feature).
//!
//! Robustness claims are cheap until a failure actually fires inside the
//! training loop. This module lets tests *make* named points in the
//! pipeline fail on demand:
//!
//! ```ignore
//! safe_data::failpoints::arm_once("gbm/train-round");
//! let outcome = safe.fit(&train, None);      // round 0 errors, fit degrades
//! safe_data::failpoints::disarm_all();
//! ```
//!
//! Production code marks injection points with the [`failpoint!`] macro.
//! Without the `failpoints` feature every function here is an inlined
//! constant (`should_fail` is always `false`), so the marked branches are
//! dead code the optimizer removes — the hot paths pay nothing. With the
//! feature, the registry is a process-global map, so tests that arm
//! failpoints must serialize on a shared mutex — see
//! `tests/fault_injection.rs`. Downstream crates (`safe-gbm`, `safe-ops`,
//! `safe-core`, the root `safe` package) forward a feature of the same
//! name here, so `cargo test --features failpoints` at the workspace root
//! activates every injection point at once.
//!
//! [`failpoint!`]: crate::failpoint

#[cfg(feature = "failpoints")]
mod imp {
    use std::collections::HashMap;
    use std::sync::{Mutex, OnceLock};

    #[derive(Clone, Copy, PartialEq, Eq)]
    enum Arm {
        /// Fire every time the point is reached.
        Always,
        /// Fire once, then disarm automatically.
        Once,
    }

    fn registry() -> &'static Mutex<HashMap<&'static str, Arm>> {
        static REGISTRY: OnceLock<Mutex<HashMap<&'static str, Arm>>> = OnceLock::new();
        REGISTRY.get_or_init(|| Mutex::new(HashMap::new()))
    }

    fn with_registry<T>(f: impl FnOnce(&mut HashMap<&'static str, Arm>) -> T) -> T {
        // A panic while holding the lock (e.g. a failing assertion in a
        // test) must not poison fault injection for every later test.
        let mut guard = registry().lock().unwrap_or_else(|e| e.into_inner());
        f(&mut guard)
    }

    /// Arm `name`: every subsequent pass through the point fails until
    /// [`disarm`] or [`disarm_all`].
    pub fn arm(name: &'static str) {
        with_registry(|map| {
            map.insert(name, Arm::Always);
        });
    }

    /// Arm `name` for exactly one firing; the point disarms itself after.
    pub fn arm_once(name: &'static str) {
        with_registry(|map| {
            map.insert(name, Arm::Once);
        });
    }

    /// Disarm a single point (no-op if it was not armed).
    pub fn disarm(name: &str) {
        with_registry(|map| {
            map.remove(name);
        });
    }

    /// Disarm every point. Call in test teardown.
    pub fn disarm_all() {
        with_registry(|map| map.clear());
    }

    /// True when `name` is armed; consumes one-shot arms.
    pub fn should_fail(name: &str) -> bool {
        with_registry(|map| match map.get(name).copied() {
            Some(Arm::Always) => true,
            Some(Arm::Once) => {
                map.remove(name);
                true
            }
            None => false,
        })
    }

    /// Names currently armed (diagnostic aid for tests).
    pub fn armed() -> Vec<&'static str> {
        with_registry(|map| map.keys().copied().collect())
    }
}

#[cfg(not(feature = "failpoints"))]
mod imp {
    /// Inert without the `failpoints` feature.
    #[inline(always)]
    pub fn arm(_name: &'static str) {}

    /// Inert without the `failpoints` feature.
    #[inline(always)]
    pub fn arm_once(_name: &'static str) {}

    /// Inert without the `failpoints` feature.
    #[inline(always)]
    pub fn disarm(_name: &str) {}

    /// Inert without the `failpoints` feature.
    #[inline(always)]
    pub fn disarm_all() {}

    /// Always `false` without the `failpoints` feature; the optimizer
    /// removes the guarded branch entirely.
    #[inline(always)]
    pub fn should_fail(_name: &str) -> bool {
        false
    }

    /// Always empty without the `failpoints` feature.
    #[inline(always)]
    pub fn armed() -> Vec<&'static str> {
        Vec::new()
    }
}

pub use imp::{arm, arm_once, armed, disarm, disarm_all, should_fail};

/// Every failpoint name the workspace registers, in one place.
///
/// This roster is the anchor for the registry-drift test
/// (`tests/failpoint_registry_drift.rs`): each name must appear at a
/// `failpoint!` call site, in a fault-injection test, and in `DESIGN.md`'s
/// failpoint table. Adding a point without extending all three is a test
/// failure, so points can't land untested or undocumented.
pub const ALL: &[&str] = &[
    // Training pipeline (PR 1).
    "ops/fit",
    "binning/fit",
    "gbm/fit-begin",
    "gbm/train-round",
    "select/iv-empty",
    "select/iv-worker-panic",
    "select/rank",
    // Staged selection (successive-halving pruner).
    "select/staged-worker-panic",
    // Checkpoint durability (crash-safety subsystem).
    "ckpt/write-fail",
    "ckpt/fsync-fail",
    "ckpt/rename-fail",
    "ckpt/torn-write",
    "ckpt/corrupt-byte",
    "ckpt/kill-before-save",
    "ckpt/kill-after-save",
    "ckpt/load-fail",
];

/// Mark a fault-injection point.
///
/// Two forms:
/// - `failpoint!("name", expr)` — when armed, `return Err(expr)` from the
///   enclosing function,
/// - `failpoint!("name" => stmt)` — when armed, run an arbitrary statement
///   (e.g. `return` a degenerate-but-valid value to exercise a fallback
///   path).
///
/// Without the `failpoints` feature the guard is a constant `false` and
/// the whole expansion is dead code.
#[macro_export]
macro_rules! failpoint {
    ($name:literal => $action:expr) => {
        if $crate::failpoints::should_fail($name) {
            $action;
        }
    };
    ($name:literal, $err:expr) => {
        if $crate::failpoints::should_fail($name) {
            return Err($err);
        }
    };
}

#[cfg(all(test, feature = "failpoints"))]
mod tests {
    use super::*;

    // These tests mutate the global registry; they use distinct names so
    // they can run in parallel with each other.

    #[test]
    fn always_arm_fires_until_disarmed() {
        arm("test/always");
        assert!(should_fail("test/always"));
        assert!(should_fail("test/always"));
        disarm("test/always");
        assert!(!should_fail("test/always"));
    }

    #[test]
    fn once_arm_fires_exactly_once() {
        arm_once("test/once");
        assert!(should_fail("test/once"));
        assert!(!should_fail("test/once"));
    }

    #[test]
    fn unarmed_points_never_fire() {
        assert!(!should_fail("test/never-armed"));
    }

    #[test]
    fn macro_returns_the_error_when_armed() {
        fn guarded() -> Result<u32, String> {
            failpoint!("test/macro", "injected".to_string());
            Ok(7)
        }
        arm_once("test/macro");
        assert_eq!(guarded(), Err("injected".to_string()));
        assert_eq!(guarded(), Ok(7));
    }

    #[test]
    fn macro_action_form_runs_the_statement() {
        fn guarded() -> u32 {
            failpoint!("test/macro-action" => return 0);
            7
        }
        arm_once("test/macro-action");
        assert_eq!(guarded(), 0);
        assert_eq!(guarded(), 7);
    }
}

#[cfg(all(test, not(feature = "failpoints")))]
mod tests {
    use super::*;

    #[test]
    fn stubs_are_inert() {
        arm("test/ignored");
        arm_once("test/ignored");
        assert!(!should_fail("test/ignored"));
        assert!(armed().is_empty());
        disarm("test/ignored");
        disarm_all();
    }
}
