//! Pre-flight data audit for the SAFE pipeline.
//!
//! Industrial feeds routinely ship degenerate slices — all-missing sensors,
//! constant flags, `±inf` from upstream divisions, single-class label
//! windows. Rather than letting those surface as panics or cryptic errors
//! deep inside binning or boosting, the pipeline runs [`audit`] over the
//! training set before fitting and acts according to an [`AuditPolicy`]:
//!
//! - [`AuditPolicy::Reject`] — refuse to fit, reporting every finding,
//! - [`AuditPolicy::Warn`] — proceed unchanged, surfacing findings in the
//!   outcome (fatal findings still reject),
//! - [`AuditPolicy::Repair`] — drop or impute offending columns, recording
//!   each [`RepairAction`] so the identical transform can be replayed on the
//!   validation set.
//!
//! Findings carry a three-level [`AuditSeverity`]: *fatal* conditions make
//! fitting meaningless under any policy (empty data, single-class labels),
//! *repairable* ones have a mechanical fix (drop a dead column, impute
//! `±inf` to missing), and *advisory* ones are worth knowing but harmless
//! (label imbalance, fewer rows than IV bins).

use std::collections::BTreeSet;
use std::fmt;

use crate::column::ColumnRead;
use crate::dataset::Dataset;
use crate::error::DataError;

/// What the pipeline does when the audit finds problems.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum AuditPolicy {
    /// Abort the fit with an [`AuditError`] listing every finding.
    Reject,
    /// Proceed unchanged; findings are recorded in the fit outcome.
    /// Fatal findings still abort — there is nothing meaningful to fit.
    #[default]
    Warn,
    /// Drop or impute offending columns before fitting, recording each
    /// action. Fatal findings (or repairs that leave no usable columns)
    /// still abort.
    Repair,
}

/// Tunables for the audit pass.
#[derive(Debug, Clone, PartialEq)]
pub struct AuditConfig {
    /// How findings are acted upon.
    pub policy: AuditPolicy,
    /// Minority-class rate below which labels are flagged as imbalanced.
    pub imbalance_threshold: f64,
    /// Bin count the downstream IV stage will request; datasets with fewer
    /// rows than this get an advisory finding.
    pub expected_bins: usize,
}

impl Default for AuditConfig {
    fn default() -> Self {
        AuditConfig {
            policy: AuditPolicy::Warn,
            imbalance_threshold: 0.01,
            expected_bins: 10,
        }
    }
}

/// How bad a finding is.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum AuditSeverity {
    /// Worth reporting; fitting proceeds unaffected.
    Advisory,
    /// Has a mechanical fix under [`AuditPolicy::Repair`].
    Repairable,
    /// Fitting is meaningless; rejected under every policy.
    Fatal,
}

/// One degenerate condition detected by [`audit`].
#[derive(Debug, Clone, PartialEq)]
pub enum AuditFinding {
    /// The dataset has no rows or no feature columns.
    EmptyDataset,
    /// Every value in the column is missing (`NaN`).
    AllMissingColumn {
        /// Offending column.
        name: String,
    },
    /// All non-missing values in the column are identical.
    ConstantColumn {
        /// Offending column.
        name: String,
        /// The single value the column takes.
        value: f64,
    },
    /// The column contains `+inf` or `-inf` values.
    NonFiniteColumn {
        /// Offending column.
        name: String,
        /// How many infinite entries were seen.
        count: usize,
    },
    /// Labels are attached but only one class is present.
    SingleClassLabels {
        /// The lone class (0 or 1).
        class: u8,
    },
    /// The minority class rate is below the configured threshold.
    ImbalancedLabels {
        /// Fraction of positive labels.
        positive_rate: f64,
    },
    /// Fewer rows than the bin count the IV stage will request.
    TooFewRows {
        /// Rows available.
        rows: usize,
        /// Bins the pipeline is configured to build.
        bins: usize,
    },
}

impl AuditFinding {
    /// Short machine-readable code for this finding kind, used as the
    /// `name` of telemetry warn events.
    pub fn code(&self) -> &'static str {
        match self {
            AuditFinding::EmptyDataset => "empty-dataset",
            AuditFinding::AllMissingColumn { .. } => "all-missing-column",
            AuditFinding::ConstantColumn { .. } => "constant-column",
            AuditFinding::NonFiniteColumn { .. } => "non-finite-column",
            AuditFinding::SingleClassLabels { .. } => "single-class-labels",
            AuditFinding::ImbalancedLabels { .. } => "imbalanced-labels",
            AuditFinding::TooFewRows { .. } => "too-few-rows",
        }
    }

    /// Severity tier of this finding.
    pub fn severity(&self) -> AuditSeverity {
        match self {
            AuditFinding::EmptyDataset | AuditFinding::SingleClassLabels { .. } => {
                AuditSeverity::Fatal
            }
            AuditFinding::AllMissingColumn { .. }
            | AuditFinding::ConstantColumn { .. }
            | AuditFinding::NonFiniteColumn { .. } => AuditSeverity::Repairable,
            AuditFinding::ImbalancedLabels { .. } | AuditFinding::TooFewRows { .. } => {
                AuditSeverity::Advisory
            }
        }
    }
}

impl fmt::Display for AuditFinding {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AuditFinding::EmptyDataset => write!(f, "dataset has no rows or no columns"),
            AuditFinding::AllMissingColumn { name } => {
                write!(f, "column '{name}' is entirely missing")
            }
            AuditFinding::ConstantColumn { name, value } => {
                write!(f, "column '{name}' is constant (always {value})")
            }
            AuditFinding::NonFiniteColumn { name, count } => {
                write!(f, "column '{name}' has {count} infinite value(s)")
            }
            AuditFinding::SingleClassLabels { class } => {
                write!(f, "labels contain only class {class}")
            }
            AuditFinding::ImbalancedLabels { positive_rate } => {
                write!(f, "labels heavily imbalanced (positive rate {positive_rate:.5})")
            }
            AuditFinding::TooFewRows { rows, bins } => {
                write!(f, "{rows} row(s) is fewer than the {bins} bins the IV stage uses")
            }
        }
    }
}

/// A concrete fix applied by [`AuditReport::repair`].
#[derive(Debug, Clone, PartialEq)]
pub enum RepairAction {
    /// The named column was removed from the dataset.
    DroppedColumn {
        /// Column removed.
        name: String,
        /// Why it was removed (human-readable).
        reason: String,
    },
    /// Infinite values in the named column were replaced with `NaN`
    /// (missing), which every downstream stage handles explicitly.
    ImputedNonFinite {
        /// Column cleaned.
        name: String,
        /// Number of values replaced.
        count: usize,
    },
}

impl fmt::Display for RepairAction {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RepairAction::DroppedColumn { name, reason } => {
                write!(f, "dropped column '{name}' ({reason})")
            }
            RepairAction::ImputedNonFinite { name, count } => {
                write!(f, "imputed {count} infinite value(s) in '{name}' to missing")
            }
        }
    }
}

/// Everything the audit pass observed, plus any repairs applied.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct AuditReport {
    /// Degenerate conditions detected, in column order.
    pub findings: Vec<AuditFinding>,
    /// Repairs applied (empty unless [`AuditReport::repair`] ran).
    pub actions: Vec<RepairAction>,
}

impl AuditReport {
    /// True when the audit found nothing at all.
    pub fn is_clean(&self) -> bool {
        self.findings.is_empty()
    }

    /// Highest severity among the findings, if any.
    pub fn worst_severity(&self) -> Option<AuditSeverity> {
        self.findings.iter().map(AuditFinding::severity).max()
    }

    /// True when a fatal finding is present.
    pub fn has_fatal(&self) -> bool {
        self.worst_severity() == Some(AuditSeverity::Fatal)
    }

    /// True when any finding is repairable.
    pub fn has_repairable(&self) -> bool {
        self.findings
            .iter()
            .any(|f| f.severity() == AuditSeverity::Repairable)
    }

    /// Apply the repairable findings to `ds`, returning a cleaned copy and
    /// recording each action on `self`.
    ///
    /// All-missing and constant columns are dropped; infinite values are
    /// imputed to `NaN`. Call [`AuditReport::replay`] with the same report
    /// to apply the identical transform to a validation set.
    pub fn repair(&mut self, ds: &Dataset) -> Result<Dataset, DataError> {
        let mut drops: Vec<(String, String)> = Vec::new();
        let mut imputes: BTreeSet<String> = BTreeSet::new();
        for finding in &self.findings {
            match finding {
                AuditFinding::AllMissingColumn { name } => {
                    drops.push((name.clone(), "entirely missing".into()));
                }
                AuditFinding::ConstantColumn { name, .. } => {
                    drops.push((name.clone(), "constant".into()));
                }
                AuditFinding::NonFiniteColumn { name, .. } => {
                    imputes.insert(name.clone());
                }
                _ => {}
            }
        }
        // A dropped column never needs imputation as well.
        for (name, _) in &drops {
            imputes.remove(name);
        }
        for (name, reason) in &drops {
            self.actions.push(RepairAction::DroppedColumn {
                name: name.clone(),
                reason: reason.clone(),
            });
        }
        let drop_set: BTreeSet<&str> = drops.iter().map(|(n, _)| n.as_str()).collect();
        let mut out = Dataset::with_rows(ds.n_rows());
        for (i, meta) in ds.meta().iter().enumerate() {
            if drop_set.contains(meta.name.as_str()) {
                continue;
            }
            if imputes.contains(&meta.name) {
                // Imputation rewrites values, so the column is gathered
                // (one column of scratch — the out-of-core contract).
                let mut cleaned = Vec::new();
                ds.column_view(i)?.gather_into(&mut cleaned)?;
                let mut count = 0usize;
                for v in &mut cleaned {
                    if v.is_infinite() {
                        *v = f64::NAN;
                        count += 1;
                    }
                }
                self.actions.push(RepairAction::ImputedNonFinite {
                    name: meta.name.clone(),
                    count,
                });
                out.push_column(meta.clone(), cleaned)?;
            } else {
                // Untouched columns share storage — chunked stays chunked.
                out.push_column_from(ds, i)?;
            }
        }
        if let Some(labels) = ds.labels() {
            out.set_labels(labels.to_vec())?;
        }
        Ok(out)
    }

    /// Replay the recorded [`RepairAction`]s on another dataset with the
    /// same schema (e.g. the validation set), so train and valid stay
    /// column-aligned. Columns named in the actions but absent from `ds`
    /// are ignored.
    pub fn replay(&self, ds: &Dataset) -> Result<Dataset, DataError> {
        let mut drop_set: BTreeSet<&str> = BTreeSet::new();
        let mut impute_set: BTreeSet<&str> = BTreeSet::new();
        for action in &self.actions {
            match action {
                RepairAction::DroppedColumn { name, .. } => {
                    drop_set.insert(name.as_str());
                }
                RepairAction::ImputedNonFinite { name, .. } => {
                    impute_set.insert(name.as_str());
                }
            }
        }
        if drop_set.is_empty() && impute_set.is_empty() {
            return Ok(ds.clone());
        }
        let mut out = Dataset::with_rows(ds.n_rows());
        for (i, meta) in ds.meta().iter().enumerate() {
            if drop_set.contains(meta.name.as_str()) {
                continue;
            }
            if impute_set.contains(meta.name.as_str()) {
                let mut cleaned = Vec::new();
                ds.column_view(i)?.gather_into(&mut cleaned)?;
                for v in &mut cleaned {
                    if v.is_infinite() {
                        *v = f64::NAN;
                    }
                }
                out.push_column(meta.clone(), cleaned)?;
            } else {
                out.push_column_from(ds, i)?;
            }
        }
        if let Some(labels) = ds.labels() {
            out.set_labels(labels.to_vec())?;
        }
        Ok(out)
    }
}

impl fmt::Display for AuditReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.is_clean() {
            return write!(f, "audit clean");
        }
        write!(f, "{} finding(s):", self.findings.len())?;
        for finding in &self.findings {
            write!(f, "\n  [{:?}] {finding}", finding.severity())?;
        }
        for action in &self.actions {
            write!(f, "\n  repair: {action}")?;
        }
        Ok(())
    }
}

/// The audit rejected the dataset (fatal findings, or any non-advisory
/// finding under [`AuditPolicy::Reject`]).
#[derive(Debug, Clone, PartialEq)]
pub struct AuditError {
    /// The full report behind the rejection.
    pub report: AuditReport,
    /// Policy that was in force.
    pub policy: AuditPolicy,
}

impl fmt::Display for AuditError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "data audit rejected the dataset ({:?} policy): {}", self.policy, self.report)
    }
}

impl std::error::Error for AuditError {}

/// Scan `ds` for degenerate conditions. Pure inspection — no policy is
/// applied and nothing is modified.
pub fn audit(ds: &Dataset, cfg: &AuditConfig) -> AuditReport {
    let mut findings = Vec::new();
    if ds.is_empty() {
        findings.push(AuditFinding::EmptyDataset);
        return AuditReport { findings, actions: Vec::new() };
    }
    for (view, meta) in ds.column_views().zip(ds.meta()) {
        let mut first: Option<f64> = None;
        let mut constant = true;
        let mut n_present = 0usize;
        let mut n_inf = 0usize;
        // One sequential pass in row order — chunk streaming visits the
        // same elements in the same order as the resident slice, so the
        // verdicts are identical on both backends. A spill-read failure
        // aborts the scan of this column early; the same fault then
        // surfaces as a hard error on the first gather path, so nothing is
        // silently misclassified downstream.
        let _ = view.for_each_chunk(0..ds.n_rows(), &mut |chunk| {
            for &v in chunk {
                if v.is_nan() {
                    continue;
                }
                if v.is_infinite() {
                    n_inf += 1;
                }
                n_present += 1;
                match first {
                    None => first = Some(v),
                    Some(head) => {
                        if v != head {
                            constant = false;
                        }
                    }
                }
            }
        });
        if n_present == 0 {
            findings.push(AuditFinding::AllMissingColumn { name: meta.name.clone() });
        } else if constant {
            findings.push(AuditFinding::ConstantColumn {
                name: meta.name.clone(),
                value: first.unwrap_or(f64::NAN),
            });
        } else if n_inf > 0 {
            findings.push(AuditFinding::NonFiniteColumn {
                name: meta.name.clone(),
                count: n_inf,
            });
        }
    }
    if let Some(labels) = ds.labels() {
        let positives = labels.iter().filter(|&&l| l == 1).count();
        if positives == 0 || positives == labels.len() {
            findings.push(AuditFinding::SingleClassLabels {
                class: if positives == 0 { 0 } else { 1 },
            });
        } else {
            let rate = positives as f64 / labels.len() as f64;
            let minority = rate.min(1.0 - rate);
            if minority < cfg.imbalance_threshold {
                findings.push(AuditFinding::ImbalancedLabels { positive_rate: rate });
            }
        }
    }
    if ds.n_rows() < cfg.expected_bins {
        findings.push(AuditFinding::TooFewRows {
            rows: ds.n_rows(),
            bins: cfg.expected_bins,
        });
    }
    AuditReport { findings, actions: Vec::new() }
}

/// Audit `ds` and enforce `cfg.policy`.
///
/// Returns the report plus, under [`AuditPolicy::Repair`], a cleaned copy
/// of the dataset (`None` when no repair was needed or the policy doesn't
/// repair). Fatal findings reject under every policy; repairable findings
/// reject only under [`AuditPolicy::Reject`]. A repair that leaves zero
/// usable columns is escalated to fatal.
pub fn enforce(ds: &Dataset, cfg: &AuditConfig) -> Result<(AuditReport, Option<Dataset>), AuditError> {
    let mut report = audit(ds, cfg);
    if report.has_fatal() {
        return Err(AuditError { report, policy: cfg.policy });
    }
    match cfg.policy {
        AuditPolicy::Reject => {
            if report.has_repairable() {
                return Err(AuditError { report, policy: cfg.policy });
            }
            Ok((report, None))
        }
        AuditPolicy::Warn => Ok((report, None)),
        AuditPolicy::Repair => {
            if !report.has_repairable() {
                return Ok((report, None));
            }
            let repaired = report.repair(ds).map_err(|e| AuditError {
                report: AuditReport {
                    findings: report.findings.clone(),
                    actions: vec![RepairAction::DroppedColumn {
                        name: "<repair failed>".into(),
                        reason: e.to_string(),
                    }],
                },
                policy: cfg.policy,
            })?;
            if repaired.n_cols() == 0 {
                report.findings.push(AuditFinding::EmptyDataset);
                return Err(AuditError { report, policy: cfg.policy });
            }
            Ok((report, Some(repaired)))
        }
    }
}

/// [`enforce`], additionally emitting every finding as a structured `warn`
/// telemetry event on the `"audit"` stage (and every repair action as an
/// `"audit-repair"`-coded warn). The enforcement result is unchanged;
/// findings are emitted whether the policy accepts or rejects.
pub fn enforce_observed(
    ds: &Dataset,
    cfg: &AuditConfig,
    sink: &dyn safe_obs::EventSink,
) -> Result<(AuditReport, Option<Dataset>), AuditError> {
    let result = enforce(ds, cfg);
    let report = match &result {
        Ok((report, _)) => report,
        Err(e) => &e.report,
    };
    for finding in &report.findings {
        sink.warn("audit", None, finding.code(), &finding.to_string());
    }
    for action in &report.actions {
        sink.warn("audit", None, "audit-repair", &action.to_string());
    }
    result
}

#[cfg(test)]
mod tests {
    use super::*;

    fn labelled(cols: Vec<(&str, Vec<f64>)>, labels: Vec<u8>) -> Dataset {
        let names = cols.iter().map(|(n, _)| n.to_string()).collect();
        let values = cols.into_iter().map(|(_, v)| v).collect();
        Dataset::from_columns(names, values, Some(labels)).unwrap()
    }

    #[test]
    fn enforce_observed_emits_findings_as_warn_events() {
        let ds = labelled(
            vec![
                ("sig", (0..10).map(|i| i as f64).collect()),
                ("konst", vec![3.0; 10]),
            ],
            vec![0, 1, 0, 1, 0, 1, 0, 1, 0, 1],
        );
        let sink = safe_obs::MemorySink::new();
        let (report, _) = enforce_observed(&ds, &AuditConfig::default(), &sink).unwrap();
        assert!(!report.findings.is_empty());
        let events = sink.events();
        assert_eq!(events.len(), report.findings.len());
        for (e, f) in events.iter().zip(&report.findings) {
            assert_eq!(e.kind, safe_obs::EventKind::Warn);
            assert_eq!(e.stage, "audit");
            assert_eq!(e.name, f.code());
            assert_eq!(e.message, f.to_string());
        }
    }

    #[test]
    fn clean_dataset_has_no_findings() {
        let ds = labelled(
            vec![("a", vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0, 7.0, 8.0, 9.0, 10.0])],
            vec![0, 1, 0, 1, 0, 1, 0, 1, 0, 1],
        );
        let report = audit(&ds, &AuditConfig::default());
        assert!(report.is_clean(), "{report}");
    }

    #[test]
    fn detects_constant_and_all_missing_columns() {
        let ds = labelled(
            vec![
                ("const", vec![7.0; 12]),
                ("dead", vec![f64::NAN; 12]),
                ("ok", (0..12).map(|i| i as f64).collect()),
            ],
            (0..12).map(|i| (i % 2) as u8).collect(),
        );
        let report = audit(&ds, &AuditConfig::default());
        assert!(report
            .findings
            .iter()
            .any(|f| matches!(f, AuditFinding::ConstantColumn { name, .. } if name == "const")));
        assert!(report
            .findings
            .iter()
            .any(|f| matches!(f, AuditFinding::AllMissingColumn { name } if name == "dead")));
        assert_eq!(report.worst_severity(), Some(AuditSeverity::Repairable));
    }

    #[test]
    fn detects_infinities_and_single_class() {
        let mut col: Vec<f64> = (0..12).map(|i| i as f64).collect();
        col[3] = f64::INFINITY;
        col[7] = f64::NEG_INFINITY;
        let ds = labelled(vec![("x", col)], vec![1; 12]);
        let report = audit(&ds, &AuditConfig::default());
        assert!(report
            .findings
            .iter()
            .any(|f| matches!(f, AuditFinding::NonFiniteColumn { count: 2, .. })));
        assert!(report
            .findings
            .iter()
            .any(|f| matches!(f, AuditFinding::SingleClassLabels { class: 1 })));
        assert!(report.has_fatal());
    }

    #[test]
    fn advisory_findings_for_imbalance_and_small_data() {
        let n = 500;
        let mut labels = vec![0u8; n];
        labels[0] = 1; // 0.2% positive
        let ds = labelled(vec![("x", (0..n).map(|i| i as f64).collect())], labels);
        let report = audit(&ds, &AuditConfig::default());
        assert!(report
            .findings
            .iter()
            .any(|f| matches!(f, AuditFinding::ImbalancedLabels { .. })));
        assert_eq!(report.worst_severity(), Some(AuditSeverity::Advisory));

        let tiny = labelled(
            vec![("x", vec![1.0, 2.0, 3.0, 4.0])],
            vec![0, 1, 0, 1],
        );
        let report = audit(&tiny, &AuditConfig::default());
        assert!(report
            .findings
            .iter()
            .any(|f| matches!(f, AuditFinding::TooFewRows { rows: 4, bins: 10 })));
    }

    #[test]
    fn repair_drops_and_imputes_then_replays_on_valid() {
        let mut inf_col: Vec<f64> = (0..12).map(|i| i as f64).collect();
        inf_col[5] = f64::INFINITY;
        let train = labelled(
            vec![
                ("const", vec![3.0; 12]),
                ("inf", inf_col),
                ("ok", (0..12).map(|i| (i * i) as f64).collect()),
            ],
            (0..12).map(|i| (i % 2) as u8).collect(),
        );
        let cfg = AuditConfig { policy: AuditPolicy::Repair, ..AuditConfig::default() };
        let (report, repaired) = enforce(&train, &cfg).unwrap();
        let repaired = repaired.expect("repairs applied");
        assert_eq!(repaired.n_cols(), 2);
        assert!(repaired.column_by_name("const").is_err());
        assert!(repaired.column_by_name("inf").unwrap().iter().all(|v| !v.is_infinite()));
        assert_eq!(repaired.labels(), train.labels());
        assert!(report.actions.iter().any(|a| matches!(
            a,
            RepairAction::DroppedColumn { name, .. } if name == "const"
        )));
        assert!(report.actions.iter().any(|a| matches!(
            a,
            RepairAction::ImputedNonFinite { name, count: 1 } if name == "inf"
        )));

        // Same schema valid set gets the identical treatment.
        let valid = labelled(
            vec![
                ("const", vec![3.0; 4]),
                ("inf", vec![1.0, f64::NEG_INFINITY, 3.0, 4.0]),
                ("ok", vec![9.0, 9.5, 10.0, 10.5]),
            ],
            vec![0, 1, 0, 1],
        );
        let valid_fixed = report.replay(&valid).unwrap();
        assert_eq!(valid_fixed.n_cols(), 2);
        assert_eq!(valid_fixed.feature_names(), repaired.feature_names());
        assert!(valid_fixed.column_by_name("inf").unwrap()[1].is_nan());
    }

    #[test]
    fn reject_policy_refuses_repairable_findings() {
        let ds = labelled(
            vec![("const", vec![1.0; 12]), ("ok", (0..12).map(|i| i as f64).collect())],
            (0..12).map(|i| (i % 2) as u8).collect(),
        );
        let cfg = AuditConfig { policy: AuditPolicy::Reject, ..AuditConfig::default() };
        let err = enforce(&ds, &cfg).unwrap_err();
        assert!(err.to_string().contains("const"));
        // Warn lets the same dataset through.
        let cfg = AuditConfig { policy: AuditPolicy::Warn, ..AuditConfig::default() };
        let (report, repaired) = enforce(&ds, &cfg).unwrap();
        assert!(repaired.is_none());
        assert!(!report.is_clean());
    }

    #[test]
    fn empty_dataset_is_fatal_under_every_policy() {
        let ds = Dataset::with_rows(0);
        for policy in [AuditPolicy::Reject, AuditPolicy::Warn, AuditPolicy::Repair] {
            let cfg = AuditConfig { policy, ..AuditConfig::default() };
            assert!(enforce(&ds, &cfg).is_err());
        }
    }

    #[test]
    fn repair_leaving_no_columns_is_fatal() {
        let ds = labelled(
            vec![("const", vec![2.0; 12])],
            (0..12).map(|i| (i % 2) as u8).collect(),
        );
        let cfg = AuditConfig { policy: AuditPolicy::Repair, ..AuditConfig::default() };
        let err = enforce(&ds, &cfg).unwrap_err();
        assert!(err.report.has_fatal());
    }
}
