//! FNV-1a/64 — the workspace's shared integrity checksum.
//!
//! Every durable text format in the workspace (the `SAFEARTIFACT` serving
//! bundle, the `SAFECKPT` training checkpoint) carries a `CHECKSUM` line
//! computed with this hash over everything below it. FNV-1a is not
//! cryptographic; it exists to catch truncation, torn writes, and
//! accidental edits, and it is trivially dependency-free. The function
//! lives here — the lowest crate in the workspace — so both `safe-core`
//! (checkpoints) and `safe-serve` (artifacts) can share one definition.

/// FNV-1a 64-bit hash of `bytes`.
pub fn fnv1a64(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn published_fnv1a64_vectors() {
        assert_eq!(fnv1a64(b""), 0xcbf2_9ce4_8422_2325);
        assert_eq!(fnv1a64(b"a"), 0xaf63_dc4c_8601_ec8c);
        assert_eq!(fnv1a64(b"foobar"), 0x8594_4171_f739_67e8);
    }

    #[test]
    fn single_byte_flip_changes_the_hash() {
        let a = fnv1a64(b"SAFECKPT body");
        let b = fnv1a64(b"SAFECKPT bodz");
        assert_ne!(a, b);
    }
}
