//! Column-major dataset with binary labels, feature provenance, and a
//! pluggable storage backend (fully resident or chunked/spilled).

use std::ops::Range;
use std::sync::Arc;

use crate::chunk::{ChunkOptions, ChunkStore, ChunkStoreBuilder};
use crate::column::{ColumnRead, ColumnView};
use crate::error::DataError;

/// Where a feature came from. SAFE needs provenance to (a) report which
/// features in the final set were generated vs. original (Fig. 3 of the
/// paper) and (b) replay generation at inference time.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FeatureOrigin {
    /// Present in the raw input data.
    Original,
    /// Produced by applying operator `op` to the named parent features.
    Generated {
        /// Operator name as registered in `safe-ops`.
        op: String,
        /// Names of the parent features, in operator-argument order.
        parents: Vec<String>,
    },
}

impl FeatureOrigin {
    /// True if the feature was created by feature engineering.
    pub fn is_generated(&self) -> bool {
        matches!(self, FeatureOrigin::Generated { .. })
    }
}

/// Metadata carried alongside each feature column.
#[derive(Debug, Clone, PartialEq)]
pub struct FeatureMeta {
    /// Unique feature name, e.g. `"x3"` or `"mul(x3,x7)"`.
    pub name: String,
    /// Provenance of the feature.
    pub origin: FeatureOrigin,
}

impl FeatureMeta {
    /// Metadata for an original (raw) feature.
    pub fn original(name: impl Into<String>) -> Self {
        FeatureMeta {
            name: name.into(),
            origin: FeatureOrigin::Original,
        }
    }

    /// Metadata for a generated feature.
    pub fn generated(name: impl Into<String>, op: impl Into<String>, parents: Vec<String>) -> Self {
        FeatureMeta {
            name: name.into(),
            origin: FeatureOrigin::Generated {
                op: op.into(),
                parents,
            },
        }
    }
}

/// Storage of one feature column. `Resident` is the classic in-memory
/// vector (shared by `Arc`, so selecting/stacking columns is zero-copy);
/// `Chunked` resolves through a [`ChunkStore`]'s LRU of decoded chunks.
#[derive(Debug, Clone)]
enum ColumnSlot {
    Resident(Arc<Vec<f64>>),
    Chunked { store: Arc<ChunkStore>, col: usize },
}

impl ColumnSlot {
    fn len(&self) -> usize {
        match self {
            ColumnSlot::Resident(v) => v.len(),
            ColumnSlot::Chunked { store, .. } => store.n_rows(),
        }
    }

    fn view(&self) -> ColumnView<'_> {
        match self {
            ColumnSlot::Resident(v) => ColumnView::Slice(v),
            ColumnSlot::Chunked { store, col } => ColumnView::Chunked { store, col: *col },
        }
    }

    fn resident(&self) -> Option<&[f64]> {
        match self {
            ColumnSlot::Resident(v) => Some(v),
            ColumnSlot::Chunked { .. } => None,
        }
    }
}

/// Column-major numeric dataset with optional binary labels.
///
/// Features are `f64` columns; `NaN` encodes a missing value. Labels are
/// `u8 ∈ {0, 1}` (the paper's tasks are binary classification: fraud vs.
/// legitimate, OpenML binary benchmarks).
///
/// # Backends
///
/// Every column is either **resident** (an in-memory vector) or
/// **chunked** (fixed-size row chunks resolved through a [`ChunkStore`],
/// optionally spilled to disk). Code on the hot paths reads columns
/// through [`Dataset::column_view`] / [`Dataset::for_each_row_chunk`] and
/// works on both backends; the raw-slice accessors ([`Dataset::column`],
/// [`Dataset::columns`], [`Dataset::row`], …) are the *resident-only
/// escape hatch* kept for models, baselines, and tests that never see
/// spilled data. Cloning is cheap for both backends: column storage is
/// shared, never copied (columns are immutable once pushed).
#[derive(Debug, Clone)]
pub struct Dataset {
    n_rows: usize,
    slots: Vec<ColumnSlot>,
    meta: Vec<FeatureMeta>,
    labels: Option<Vec<u8>>,
}

impl Dataset {
    /// Create an empty dataset with a fixed row count and no columns yet.
    pub fn with_rows(n_rows: usize) -> Self {
        Dataset {
            n_rows,
            slots: Vec::new(),
            meta: Vec::new(),
            labels: None,
        }
    }

    /// The one validated construction path every column-adding entry point
    /// funnels through (`from_columns`, `from_rows`, `push_column`,
    /// `push_column_from`, `from_chunk_store`, `hstack`): row-count and
    /// duplicate-name checks live here and nowhere else, so they cannot
    /// diverge between entry points.
    fn insert_slot(&mut self, meta: FeatureMeta, slot: ColumnSlot) -> Result<(), DataError> {
        if slot.len() != self.n_rows {
            return Err(DataError::ColumnLengthMismatch {
                name: meta.name,
                expected: self.n_rows,
                actual: slot.len(),
            });
        }
        if self.meta.iter().any(|m| m.name == meta.name) {
            return Err(DataError::DuplicateFeature(meta.name));
        }
        self.meta.push(meta);
        self.slots.push(slot);
        Ok(())
    }

    /// Build a dataset from column vectors and names. All columns must share
    /// the same length and names must be unique.
    pub fn from_columns(
        names: Vec<String>,
        columns: Vec<Vec<f64>>,
        labels: Option<Vec<u8>>,
    ) -> Result<Self, DataError> {
        if names.len() != columns.len() {
            return Err(DataError::ColumnLengthMismatch {
                name: "<names>".into(),
                expected: columns.len(),
                actual: names.len(),
            });
        }
        let n_rows = columns.first().map(|c| c.len()).unwrap_or(0);
        let mut ds = Dataset::with_rows(n_rows);
        for (name, col) in names.into_iter().zip(columns) {
            ds.push_column(FeatureMeta::original(name), col)?;
        }
        if let Some(labels) = labels {
            ds.set_labels(labels)?;
        }
        Ok(ds)
    }

    /// Build from row-major data (convenience for tests and CSV ingestion).
    pub fn from_rows(
        names: Vec<String>,
        rows: &[Vec<f64>],
        labels: Option<Vec<u8>>,
    ) -> Result<Self, DataError> {
        let n_cols = names.len();
        let mut columns = vec![Vec::with_capacity(rows.len()); n_cols];
        for (i, row) in rows.iter().enumerate() {
            if row.len() != n_cols {
                return Err(DataError::RowShapeMismatch {
                    row: i,
                    expected: n_cols,
                    actual: row.len(),
                });
            }
            for (c, &v) in row.iter().enumerate() {
                columns[c].push(v);
            }
        }
        Dataset::from_columns(names, columns, labels)
    }

    /// Build a dataset whose feature columns all live in `store` (the
    /// out-of-core ingest path). `names.len()` must equal the store's
    /// column count.
    pub fn from_chunk_store(
        names: Vec<String>,
        store: ChunkStore,
        labels: Option<Vec<u8>>,
    ) -> Result<Self, DataError> {
        if names.len() != store.n_cols() {
            return Err(DataError::ColumnLengthMismatch {
                name: "<names>".into(),
                expected: store.n_cols(),
                actual: names.len(),
            });
        }
        let mut ds = Dataset::with_rows(store.n_rows());
        let store = Arc::new(store);
        for (col, name) in names.into_iter().enumerate() {
            ds.insert_slot(
                FeatureMeta::original(name),
                ColumnSlot::Chunked { store: Arc::clone(&store), col },
            )?;
        }
        if let Some(labels) = labels {
            ds.set_labels(labels)?;
        }
        Ok(ds)
    }

    /// Re-store this dataset's feature columns through a chunk store built
    /// under `opts` (labels and provenance carried over). Used by tests and
    /// benches to produce the chunked twin of a resident dataset; values
    /// are copied row-wise, so the source must be resident.
    pub fn to_chunked(&self, opts: ChunkOptions) -> Result<Dataset, DataError> {
        let mut builder = ChunkStoreBuilder::new(self.n_cols(), opts)?;
        let cols: Vec<&[f64]> = self.slots.iter().map(|s| self.expect_resident(s)).collect();
        let mut row = vec![0.0f64; cols.len()];
        for i in 0..self.n_rows {
            for (c, col) in cols.iter().enumerate() {
                row[c] = col[i];
            }
            builder.push_row(&row)?;
        }
        let store = Arc::new(builder.finish()?);
        let mut ds = Dataset::with_rows(self.n_rows);
        for (col, meta) in self.meta.iter().enumerate() {
            ds.insert_slot(
                meta.clone(),
                ColumnSlot::Chunked { store: Arc::clone(&store), col },
            )?;
        }
        ds.labels = self.labels.clone();
        Ok(ds)
    }

    /// Number of rows (records).
    pub fn n_rows(&self) -> usize {
        self.n_rows
    }

    /// Number of feature columns.
    pub fn n_cols(&self) -> usize {
        self.slots.len()
    }

    /// True when the dataset has no rows or no columns.
    pub fn is_empty(&self) -> bool {
        self.n_rows == 0 || self.slots.is_empty()
    }

    /// Append a feature column.
    pub fn push_column(&mut self, meta: FeatureMeta, values: Vec<f64>) -> Result<(), DataError> {
        self.insert_slot(meta, ColumnSlot::Resident(Arc::new(values)))
    }

    /// Append column `src_idx` of `src` under its own metadata, sharing
    /// storage (no copy, chunked columns stay chunked). This is how audit
    /// repair/replay and plan application pass untouched columns through
    /// without materializing them.
    pub fn push_column_from(&mut self, src: &Dataset, src_idx: usize) -> Result<(), DataError> {
        let slot = src.slots.get(src_idx).ok_or(DataError::ColumnOutOfRange {
            index: src_idx,
            len: src.slots.len(),
        })?;
        self.insert_slot(src.meta[src_idx].clone(), slot.clone())
    }

    /// Attach binary labels.
    pub fn set_labels(&mut self, labels: Vec<u8>) -> Result<(), DataError> {
        if labels.len() != self.n_rows {
            return Err(DataError::LabelLengthMismatch {
                expected: self.n_rows,
                actual: labels.len(),
            });
        }
        if let Some((row, &value)) = labels.iter().enumerate().find(|(_, &v)| v > 1) {
            return Err(DataError::InvalidLabel {
                row,
                value: value as f64,
            });
        }
        self.labels = Some(labels);
        Ok(())
    }

    /// Binary labels, if attached.
    pub fn labels(&self) -> Option<&[u8]> {
        self.labels.as_deref()
    }

    /// Labels or an error for pipelines that require supervision.
    pub fn require_labels(&self) -> Result<&[u8], DataError> {
        self.labels().ok_or(DataError::EmptyDataset)
    }

    /// Feature column by index as a raw slice — **resident-only escape
    /// hatch**; chunked columns yield [`DataError::ColumnNotResident`].
    /// Backend-agnostic code uses [`Dataset::column_view`].
    pub fn column(&self, index: usize) -> Result<&[f64], DataError> {
        let slot = self.slots.get(index).ok_or(DataError::ColumnOutOfRange {
            index,
            len: self.slots.len(),
        })?;
        slot.resident()
            .ok_or_else(|| DataError::ColumnNotResident(self.meta[index].name.clone()))
    }

    /// Feature column by name (resident-only, like [`Dataset::column`]).
    pub fn column_by_name(&self, name: &str) -> Result<&[f64], DataError> {
        let idx = self.feature_index(name)?;
        self.column(idx)
    }

    /// Backend-agnostic read view of one column.
    pub fn column_view(&self, index: usize) -> Result<ColumnView<'_>, DataError> {
        self.slots
            .get(index)
            .map(ColumnSlot::view)
            .ok_or(DataError::ColumnOutOfRange {
                index,
                len: self.slots.len(),
            })
    }

    /// Backend-agnostic read view of one column, by name.
    pub fn column_view_by_name(&self, name: &str) -> Result<ColumnView<'_>, DataError> {
        let idx = self.feature_index(name)?;
        self.column_view(idx)
    }

    /// All column views, in order — the backend-agnostic counterpart of
    /// [`Dataset::columns`].
    pub fn column_views(&self) -> impl Iterator<Item = ColumnView<'_>> {
        self.slots.iter().map(ColumnSlot::view)
    }

    /// Index of the named feature.
    pub fn feature_index(&self, name: &str) -> Result<usize, DataError> {
        self.meta
            .iter()
            .position(|m| m.name == name)
            .ok_or_else(|| DataError::UnknownFeature(name.to_string()))
    }

    fn expect_resident<'a>(&self, slot: &'a ColumnSlot) -> &'a [f64] {
        match slot.resident() {
            Some(s) => s,
            None => panic!(
                "raw-slice access on a chunked/spilled column; \
                 use column_view()/for_each_row_chunk() on out-of-core datasets"
            ),
        }
    }

    /// All column slices, in order — **resident-only escape hatch** for
    /// models, baselines, and tests that never see out-of-core data.
    ///
    /// # Panics
    ///
    /// Panics when a column is chunked/spilled; backend-agnostic code uses
    /// [`Dataset::column_views`].
    pub fn columns(&self) -> impl Iterator<Item = &[f64]> {
        self.slots.iter().map(|s| self.expect_resident(s))
    }

    /// True when at least one column resolves through a spill-backed chunk
    /// store (i.e. raw-slice access would fail).
    pub fn has_chunked_columns(&self) -> bool {
        self.slots
            .iter()
            .any(|s| matches!(s, ColumnSlot::Chunked { .. }))
    }

    /// The distinct chunk stores backing this dataset's columns (usually
    /// zero or one), for cache-stats reporting.
    pub fn chunk_stores(&self) -> Vec<&Arc<ChunkStore>> {
        let mut out: Vec<&Arc<ChunkStore>> = Vec::new();
        for slot in &self.slots {
            if let ColumnSlot::Chunked { store, .. } = slot {
                if !out.iter().any(|s| Arc::ptr_eq(s, store)) {
                    out.push(store);
                }
            }
        }
        out
    }

    /// Visit the table in row ranges: `f(range, cols)` receives, for every
    /// column in order, the slice of its values covering `range`. On a
    /// fully resident dataset this is a single call covering all rows (the
    /// zero-cost path); with chunked columns the ranges follow the chunk
    /// grid (boundary union across stores), each chunk decoded once per
    /// visit. Ranges ascend, so per-row streaming consumers (GBM margin
    /// updates, CSV writing, audits) see rows in exactly resident order.
    pub fn for_each_row_chunk(
        &self,
        f: &mut dyn FnMut(Range<usize>, &[&[f64]]),
    ) -> Result<(), DataError> {
        if self.n_rows == 0 {
            return Ok(());
        }
        let stores = self.chunk_stores();
        if stores.is_empty() {
            let cols: Vec<&[f64]> = self.slots.iter().map(|s| self.expect_resident(s)).collect();
            f(0..self.n_rows, &cols);
            return Ok(());
        }
        let stores: Vec<Arc<ChunkStore>> = stores.into_iter().map(Arc::clone).collect();
        let mut start = 0usize;
        while start < self.n_rows {
            // Segment end: nearest chunk boundary of any backing store, so
            // each segment lies within one chunk per store.
            let mut end = self.n_rows;
            for store in &stores {
                let rows = store.chunk_rows();
                let boundary = (start / rows + 1) * rows;
                end = end.min(boundary);
            }
            // Hold each store's covering chunk alive for the callback.
            let mut bufs = Vec::with_capacity(stores.len());
            for store in &stores {
                bufs.push((Arc::as_ptr(store), store.chunk(start / store.chunk_rows())?));
            }
            let mut cols: Vec<&[f64]> = Vec::with_capacity(self.slots.len());
            for slot in &self.slots {
                match slot {
                    ColumnSlot::Resident(v) => cols.push(&v[start..end]),
                    ColumnSlot::Chunked { store, col } => {
                        let ptr = Arc::as_ptr(store);
                        let (_, buf) = bufs
                            .iter()
                            .find(|(p, _)| *p == ptr)
                            .ok_or(DataError::EmptyDataset)?;
                        let chunk_start = (start / store.chunk_rows()) * store.chunk_rows();
                        cols.push(&buf.col(*col)[start - chunk_start..end - chunk_start]);
                    }
                }
            }
            f(start..end, &cols);
            start = end;
        }
        Ok(())
    }

    /// Metadata for every feature, in column order.
    pub fn meta(&self) -> &[FeatureMeta] {
        &self.meta
    }

    /// Metadata for one column.
    pub fn meta_at(&self, index: usize) -> Result<&FeatureMeta, DataError> {
        self.meta.get(index).ok_or(DataError::ColumnOutOfRange {
            index,
            len: self.meta.len(),
        })
    }

    /// Feature names, in column order.
    pub fn feature_names(&self) -> Vec<&str> {
        self.meta.iter().map(|m| m.name.as_str()).collect()
    }

    /// Materialize one record as a dense row vector (used by row-oriented
    /// learners like kNN and by real-time inference). Resident-only, like
    /// [`Dataset::columns`].
    pub fn row(&self, index: usize) -> Vec<f64> {
        self.slots
            .iter()
            .map(|s| self.expect_resident(s)[index])
            .collect()
    }

    /// Copy out a row-major matrix. Row-oriented models (kNN, MLP batching)
    /// convert once up front instead of striding the columnar store.
    /// Resident-only, like [`Dataset::columns`].
    pub fn to_rows(&self) -> Vec<Vec<f64>> {
        (0..self.n_rows).map(|i| self.row(i)).collect()
    }

    /// Dataset restricted to the given column indices (provenance
    /// preserved). Storage is shared, not copied — chunked columns stay
    /// chunked, so selection never defeats the out-of-core backend.
    pub fn select_columns(&self, indices: &[usize]) -> Result<Dataset, DataError> {
        let mut out = Dataset::with_rows(self.n_rows);
        for &i in indices {
            out.push_column_from(self, i)?;
        }
        out.labels = self.labels.clone();
        Ok(out)
    }

    /// Dataset restricted to the given row indices. The result is always
    /// resident (row shuffles are a pre-chunking operation); resident-only
    /// on the input, like [`Dataset::columns`].
    pub fn select_rows(&self, indices: &[usize]) -> Dataset {
        let slots: Vec<ColumnSlot> = self
            .slots
            .iter()
            .map(|s| {
                let c = self.expect_resident(s);
                ColumnSlot::Resident(Arc::new(indices.iter().map(|&i| c[i]).collect()))
            })
            .collect();
        let labels = self
            .labels
            .as_ref()
            .map(|l| indices.iter().map(|&i| l[i]).collect());
        Dataset {
            n_rows: indices.len(),
            slots,
            meta: self.meta.clone(),
            labels,
        }
    }

    /// Horizontally concatenate another dataset's columns onto this one.
    /// Duplicate feature names in `other` are skipped (idempotent union, used
    /// when forming the candidate set X̂ = X ∪ X̃ in Algorithm 1). Storage
    /// is shared, not copied.
    pub fn hstack(&mut self, other: &Dataset) -> Result<usize, DataError> {
        if other.n_rows != self.n_rows {
            return Err(DataError::ColumnLengthMismatch {
                name: "<hstack>".into(),
                expected: self.n_rows,
                actual: other.n_rows,
            });
        }
        let mut added = 0;
        for i in 0..other.slots.len() {
            if self.meta.iter().any(|m| m.name == other.meta[i].name) {
                continue;
            }
            self.push_column_from(other, i)?;
            added += 1;
        }
        Ok(added)
    }

    /// Count of generated (non-original) features.
    pub fn n_generated(&self) -> usize {
        self.meta.iter().filter(|m| m.origin.is_generated()).count()
    }

    /// Fraction of positive labels; `None` when unlabeled or empty.
    pub fn positive_rate(&self) -> Option<f64> {
        let labels = self.labels.as_ref()?;
        if labels.is_empty() {
            return None;
        }
        let pos = labels.iter().filter(|&&l| l == 1).count();
        Some(pos as f64 / labels.len() as f64)
    }
}

/// Logical equality over values, metadata, and labels — independent of
/// backend (a chunked dataset equals its resident twin). Preserves `f64`
/// comparison semantics (`NaN != NaN`), matching the previously derived
/// impl. Chunked columns are gathered for comparison, so this is for
/// tests, not hot paths; an I/O failure during the gather compares
/// unequal.
impl PartialEq for Dataset {
    fn eq(&self, other: &Dataset) -> bool {
        if self.n_rows != other.n_rows
            || self.meta != other.meta
            || self.labels != other.labels
        {
            return false;
        }
        let mut a_buf = Vec::new();
        let mut b_buf = Vec::new();
        for (a, b) in self.slots.iter().zip(&other.slots) {
            let (a_view, b_view) = (a.view(), b.view());
            let a = match a_view.materialize(&mut a_buf) {
                Ok(s) => s,
                Err(_) => return false,
            };
            let b = match b_view.materialize(&mut b_buf) {
                Ok(s) => s,
                Err(_) => return false,
            };
            if a != b {
                return false;
            }
        }
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small() -> Dataset {
        Dataset::from_columns(
            vec!["a".into(), "b".into()],
            vec![vec![1.0, 2.0, 3.0], vec![4.0, 5.0, 6.0]],
            Some(vec![0, 1, 1]),
        )
        .unwrap()
    }

    #[test]
    fn construction_and_shape() {
        let ds = small();
        assert_eq!(ds.n_rows(), 3);
        assert_eq!(ds.n_cols(), 2);
        assert_eq!(ds.column(0).unwrap(), &[1.0, 2.0, 3.0]);
        assert_eq!(ds.column_by_name("b").unwrap(), &[4.0, 5.0, 6.0]);
        assert_eq!(ds.labels().unwrap(), &[0, 1, 1]);
    }

    #[test]
    fn rejects_mismatched_column() {
        let mut ds = small();
        let err = ds
            .push_column(FeatureMeta::original("c"), vec![1.0])
            .unwrap_err();
        assert!(matches!(err, DataError::ColumnLengthMismatch { .. }));
    }

    #[test]
    fn rejects_duplicate_name() {
        let mut ds = small();
        let err = ds
            .push_column(FeatureMeta::original("a"), vec![0.0; 3])
            .unwrap_err();
        assert_eq!(err, DataError::DuplicateFeature("a".into()));
    }

    /// Satellite pin: every construction entry point reports shape and
    /// duplicate-name violations with the same errors, because they all
    /// route through the one sealed constructor.
    #[test]
    fn construction_entry_points_share_error_parity() {
        // Duplicate name: push_column vs from_columns vs hstack-source.
        let dup_push = {
            let mut ds = small();
            ds.push_column(FeatureMeta::original("a"), vec![0.0; 3]).unwrap_err()
        };
        let dup_from = Dataset::from_columns(
            vec!["a".into(), "a".into()],
            vec![vec![1.0], vec![2.0]],
            None,
        )
        .unwrap_err();
        assert_eq!(dup_push, DataError::DuplicateFeature("a".into()));
        assert_eq!(dup_from, DataError::DuplicateFeature("a".into()));

        // Length mismatch: push_column vs from_columns vs push_column_from.
        let len_push = {
            let mut ds = small();
            ds.push_column(FeatureMeta::original("c"), vec![1.0]).unwrap_err()
        };
        let len_from = Dataset::from_columns(
            vec!["a".into(), "b".into()],
            vec![vec![1.0, 2.0], vec![3.0]],
            None,
        )
        .unwrap_err();
        let len_shared = {
            let src = small();
            let mut dst = Dataset::with_rows(7);
            dst.push_column_from(&src, 0).unwrap_err()
        };
        assert_eq!(
            len_push,
            DataError::ColumnLengthMismatch { name: "c".into(), expected: 3, actual: 1 }
        );
        assert_eq!(
            len_from,
            DataError::ColumnLengthMismatch { name: "b".into(), expected: 2, actual: 1 }
        );
        assert_eq!(
            len_shared,
            DataError::ColumnLengthMismatch { name: "a".into(), expected: 7, actual: 3 }
        );
    }

    #[test]
    fn from_rows_reports_row_shape_mismatch() {
        let rows = vec![vec![1.0, 2.0], vec![3.0]];
        let err = Dataset::from_rows(vec!["x".into(), "y".into()], &rows, None).unwrap_err();
        assert_eq!(err, DataError::RowShapeMismatch { row: 1, expected: 2, actual: 1 });
        assert!(
            !matches!(err, DataError::Csv { .. }),
            "plain shape errors must not masquerade as CSV parse errors"
        );
    }

    #[test]
    fn rejects_bad_labels() {
        let mut ds = small();
        assert!(matches!(
            ds.set_labels(vec![0, 1]).unwrap_err(),
            DataError::LabelLengthMismatch { .. }
        ));
        assert!(matches!(
            ds.set_labels(vec![0, 1, 2]).unwrap_err(),
            DataError::InvalidLabel { row: 2, .. }
        ));
    }

    #[test]
    fn row_access_matches_columns() {
        let ds = small();
        assert_eq!(ds.row(1), vec![2.0, 5.0]);
        assert_eq!(ds.to_rows(), vec![vec![1.0, 4.0], vec![2.0, 5.0], vec![3.0, 6.0]]);
    }

    #[test]
    fn select_columns_preserves_meta_and_labels() {
        let ds = small();
        let sub = ds.select_columns(&[1]).unwrap();
        assert_eq!(sub.n_cols(), 1);
        assert_eq!(sub.feature_names(), vec!["b"]);
        assert_eq!(sub.labels().unwrap(), &[0, 1, 1]);
    }

    #[test]
    fn select_rows_subsets_everything() {
        let ds = small();
        let sub = ds.select_rows(&[2, 0]);
        assert_eq!(sub.n_rows(), 2);
        assert_eq!(sub.column(0).unwrap(), &[3.0, 1.0]);
        assert_eq!(sub.labels().unwrap(), &[1, 0]);
    }

    #[test]
    fn hstack_skips_duplicates() {
        let mut ds = small();
        let mut other = Dataset::with_rows(3);
        other
            .push_column(FeatureMeta::original("a"), vec![9.0; 3])
            .unwrap();
        other
            .push_column(
                FeatureMeta::generated("a+b", "add", vec!["a".into(), "b".into()]),
                vec![5.0, 7.0, 9.0],
            )
            .unwrap();
        let added = ds.hstack(&other).unwrap();
        assert_eq!(added, 1);
        assert_eq!(ds.n_cols(), 3);
        assert_eq!(ds.column_by_name("a").unwrap(), &[1.0, 2.0, 3.0]); // untouched
        assert_eq!(ds.n_generated(), 1);
    }

    #[test]
    fn positive_rate() {
        let ds = small();
        assert!((ds.positive_rate().unwrap() - 2.0 / 3.0).abs() < 1e-12);
        let unlabeled = Dataset::with_rows(5);
        assert_eq!(unlabeled.positive_rate(), None);
    }

    #[test]
    fn from_rows_round_trip() {
        let rows = vec![vec![1.0, 2.0], vec![3.0, 4.0]];
        let ds = Dataset::from_rows(vec!["x".into(), "y".into()], &rows, None).unwrap();
        assert_eq!(ds.to_rows(), rows);
    }

    #[test]
    fn generated_origin_flags() {
        let m = FeatureMeta::generated("div(a,b)", "div", vec!["a".into(), "b".into()]);
        assert!(m.origin.is_generated());
        assert!(!FeatureMeta::original("a").origin.is_generated());
    }

    #[test]
    fn chunked_twin_compares_equal_and_views_match() {
        let ds = small();
        let chunked = ds.to_chunked(ChunkOptions::in_memory(2)).unwrap();
        assert!(chunked.has_chunked_columns());
        assert_eq!(chunked.chunk_stores().len(), 1);
        assert_eq!(chunked, ds, "chunked twin must be logically equal");
        assert!(matches!(
            chunked.column(0).unwrap_err(),
            DataError::ColumnNotResident(_)
        ));
        let mut buf = Vec::new();
        chunked.column_view(1).unwrap().gather_into(&mut buf).unwrap();
        assert_eq!(buf, &[4.0, 5.0, 6.0]);
    }

    #[test]
    fn select_columns_shares_chunked_storage() {
        let ds = small().to_chunked(ChunkOptions::in_memory(2)).unwrap();
        let sub = ds.select_columns(&[1]).unwrap();
        assert!(sub.has_chunked_columns(), "selection must not materialize");
        assert!(Arc::ptr_eq(sub.chunk_stores()[0], ds.chunk_stores()[0]));
    }

    #[test]
    fn row_chunk_iteration_covers_table_in_order() {
        let ds = small();
        let mixed = {
            // Chunked base columns plus one resident pushed column.
            let mut m = ds.to_chunked(ChunkOptions::in_memory(2)).unwrap();
            m.push_column(FeatureMeta::original("r"), vec![7.0, 8.0, 9.0]).unwrap();
            m
        };
        let mut seen: Vec<Vec<f64>> = vec![Vec::new(); 3];
        let mut bounds = Vec::new();
        mixed
            .for_each_row_chunk(&mut |range, cols| {
                bounds.push(range.clone());
                for (c, col) in cols.iter().enumerate() {
                    seen[c].extend_from_slice(col);
                }
            })
            .unwrap();
        assert_eq!(bounds, vec![0..2, 2..3], "ranges follow the chunk grid");
        assert_eq!(seen[0], &[1.0, 2.0, 3.0]);
        assert_eq!(seen[1], &[4.0, 5.0, 6.0]);
        assert_eq!(seen[2], &[7.0, 8.0, 9.0]);
    }

    #[test]
    fn resident_row_chunk_iteration_is_single_full_range() {
        let ds = small();
        let mut calls = 0;
        ds.for_each_row_chunk(&mut |range, cols| {
            calls += 1;
            assert_eq!(range, 0..3);
            assert_eq!(cols.len(), 2);
        })
        .unwrap();
        assert_eq!(calls, 1);
    }
}
