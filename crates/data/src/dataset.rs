//! Column-major dataset with binary labels and feature provenance.

use crate::error::DataError;

/// Where a feature came from. SAFE needs provenance to (a) report which
/// features in the final set were generated vs. original (Fig. 3 of the
/// paper) and (b) replay generation at inference time.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FeatureOrigin {
    /// Present in the raw input data.
    Original,
    /// Produced by applying operator `op` to the named parent features.
    Generated {
        /// Operator name as registered in `safe-ops`.
        op: String,
        /// Names of the parent features, in operator-argument order.
        parents: Vec<String>,
    },
}

impl FeatureOrigin {
    /// True if the feature was created by feature engineering.
    pub fn is_generated(&self) -> bool {
        matches!(self, FeatureOrigin::Generated { .. })
    }
}

/// Metadata carried alongside each feature column.
#[derive(Debug, Clone, PartialEq)]
pub struct FeatureMeta {
    /// Unique feature name, e.g. `"x3"` or `"mul(x3,x7)"`.
    pub name: String,
    /// Provenance of the feature.
    pub origin: FeatureOrigin,
}

impl FeatureMeta {
    /// Metadata for an original (raw) feature.
    pub fn original(name: impl Into<String>) -> Self {
        FeatureMeta {
            name: name.into(),
            origin: FeatureOrigin::Original,
        }
    }

    /// Metadata for a generated feature.
    pub fn generated(name: impl Into<String>, op: impl Into<String>, parents: Vec<String>) -> Self {
        FeatureMeta {
            name: name.into(),
            origin: FeatureOrigin::Generated {
                op: op.into(),
                parents,
            },
        }
    }
}

/// Column-major numeric dataset with optional binary labels.
///
/// Features are `f64` columns; `NaN` encodes a missing value. Labels are
/// `u8 ∈ {0, 1}` (the paper's tasks are binary classification: fraud vs.
/// legitimate, OpenML binary benchmarks).
#[derive(Debug, Clone, PartialEq)]
pub struct Dataset {
    n_rows: usize,
    columns: Vec<Vec<f64>>,
    meta: Vec<FeatureMeta>,
    labels: Option<Vec<u8>>,
}

impl Dataset {
    /// Create an empty dataset with a fixed row count and no columns yet.
    pub fn with_rows(n_rows: usize) -> Self {
        Dataset {
            n_rows,
            columns: Vec::new(),
            meta: Vec::new(),
            labels: None,
        }
    }

    /// Build a dataset from column vectors and names. All columns must share
    /// the same length and names must be unique.
    pub fn from_columns(
        names: Vec<String>,
        columns: Vec<Vec<f64>>,
        labels: Option<Vec<u8>>,
    ) -> Result<Self, DataError> {
        if names.len() != columns.len() {
            return Err(DataError::ColumnLengthMismatch {
                name: "<names>".into(),
                expected: columns.len(),
                actual: names.len(),
            });
        }
        let n_rows = columns.first().map(|c| c.len()).unwrap_or(0);
        let mut ds = Dataset::with_rows(n_rows);
        for (name, col) in names.into_iter().zip(columns) {
            ds.push_column(FeatureMeta::original(name), col)?;
        }
        if let Some(labels) = labels {
            ds.set_labels(labels)?;
        }
        Ok(ds)
    }

    /// Build from row-major data (convenience for tests and CSV ingestion).
    pub fn from_rows(
        names: Vec<String>,
        rows: &[Vec<f64>],
        labels: Option<Vec<u8>>,
    ) -> Result<Self, DataError> {
        let n_cols = names.len();
        let mut columns = vec![Vec::with_capacity(rows.len()); n_cols];
        for (i, row) in rows.iter().enumerate() {
            if row.len() != n_cols {
                return Err(DataError::Csv {
                    line: i + 1,
                    message: format!("row has {} fields, expected {n_cols}", row.len()),
                });
            }
            for (c, &v) in row.iter().enumerate() {
                columns[c].push(v);
            }
        }
        Dataset::from_columns(names, columns, labels)
    }

    /// Number of rows (records).
    pub fn n_rows(&self) -> usize {
        self.n_rows
    }

    /// Number of feature columns.
    pub fn n_cols(&self) -> usize {
        self.columns.len()
    }

    /// True when the dataset has no rows or no columns.
    pub fn is_empty(&self) -> bool {
        self.n_rows == 0 || self.columns.is_empty()
    }

    /// Append a feature column.
    pub fn push_column(&mut self, meta: FeatureMeta, values: Vec<f64>) -> Result<(), DataError> {
        if values.len() != self.n_rows {
            return Err(DataError::ColumnLengthMismatch {
                name: meta.name,
                expected: self.n_rows,
                actual: values.len(),
            });
        }
        if self.meta.iter().any(|m| m.name == meta.name) {
            return Err(DataError::DuplicateFeature(meta.name));
        }
        self.meta.push(meta);
        self.columns.push(values);
        Ok(())
    }

    /// Attach binary labels.
    pub fn set_labels(&mut self, labels: Vec<u8>) -> Result<(), DataError> {
        if labels.len() != self.n_rows {
            return Err(DataError::LabelLengthMismatch {
                expected: self.n_rows,
                actual: labels.len(),
            });
        }
        if let Some((row, &value)) = labels.iter().enumerate().find(|(_, &v)| v > 1) {
            return Err(DataError::InvalidLabel {
                row,
                value: value as f64,
            });
        }
        self.labels = Some(labels);
        Ok(())
    }

    /// Binary labels, if attached.
    pub fn labels(&self) -> Option<&[u8]> {
        self.labels.as_deref()
    }

    /// Labels or an error for pipelines that require supervision.
    pub fn require_labels(&self) -> Result<&[u8], DataError> {
        self.labels().ok_or(DataError::EmptyDataset)
    }

    /// Feature column by index.
    pub fn column(&self, index: usize) -> Result<&[f64], DataError> {
        self.columns
            .get(index)
            .map(|c| c.as_slice())
            .ok_or(DataError::ColumnOutOfRange {
                index,
                len: self.columns.len(),
            })
    }

    /// Feature column by name.
    pub fn column_by_name(&self, name: &str) -> Result<&[f64], DataError> {
        let idx = self.feature_index(name)?;
        self.column(idx)
    }

    /// Index of the named feature.
    pub fn feature_index(&self, name: &str) -> Result<usize, DataError> {
        self.meta
            .iter()
            .position(|m| m.name == name)
            .ok_or_else(|| DataError::UnknownFeature(name.to_string()))
    }

    /// All column slices, in order.
    pub fn columns(&self) -> impl Iterator<Item = &[f64]> {
        self.columns.iter().map(|c| c.as_slice())
    }

    /// Metadata for every feature, in column order.
    pub fn meta(&self) -> &[FeatureMeta] {
        &self.meta
    }

    /// Metadata for one column.
    pub fn meta_at(&self, index: usize) -> Result<&FeatureMeta, DataError> {
        self.meta.get(index).ok_or(DataError::ColumnOutOfRange {
            index,
            len: self.meta.len(),
        })
    }

    /// Feature names, in column order.
    pub fn feature_names(&self) -> Vec<&str> {
        self.meta.iter().map(|m| m.name.as_str()).collect()
    }

    /// Materialize one record as a dense row vector (used by row-oriented
    /// learners like kNN and by real-time inference).
    pub fn row(&self, index: usize) -> Vec<f64> {
        self.columns.iter().map(|c| c[index]).collect()
    }

    /// Copy out a row-major matrix. Row-oriented models (kNN, MLP batching)
    /// convert once up front instead of striding the columnar store.
    pub fn to_rows(&self) -> Vec<Vec<f64>> {
        (0..self.n_rows).map(|i| self.row(i)).collect()
    }

    /// Dataset restricted to the given column indices (provenance preserved).
    pub fn select_columns(&self, indices: &[usize]) -> Result<Dataset, DataError> {
        let mut out = Dataset::with_rows(self.n_rows);
        for &i in indices {
            let col = self.column(i)?.to_vec();
            out.push_column(self.meta_at(i)?.clone(), col)?;
        }
        out.labels = self.labels.clone();
        Ok(out)
    }

    /// Dataset restricted to the given row indices.
    pub fn select_rows(&self, indices: &[usize]) -> Dataset {
        let columns: Vec<Vec<f64>> = self
            .columns
            .iter()
            .map(|c| indices.iter().map(|&i| c[i]).collect())
            .collect();
        let labels = self
            .labels
            .as_ref()
            .map(|l| indices.iter().map(|&i| l[i]).collect());
        Dataset {
            n_rows: indices.len(),
            columns,
            meta: self.meta.clone(),
            labels,
        }
    }

    /// Horizontally concatenate another dataset's columns onto this one.
    /// Duplicate feature names in `other` are skipped (idempotent union, used
    /// when forming the candidate set X̂ = X ∪ X̃ in Algorithm 1).
    pub fn hstack(&mut self, other: &Dataset) -> Result<usize, DataError> {
        if other.n_rows != self.n_rows {
            return Err(DataError::ColumnLengthMismatch {
                name: "<hstack>".into(),
                expected: self.n_rows,
                actual: other.n_rows,
            });
        }
        let mut added = 0;
        for (meta, col) in other.meta.iter().zip(&other.columns) {
            if self.meta.iter().any(|m| m.name == meta.name) {
                continue;
            }
            self.push_column(meta.clone(), col.clone())?;
            added += 1;
        }
        Ok(added)
    }

    /// Count of generated (non-original) features.
    pub fn n_generated(&self) -> usize {
        self.meta.iter().filter(|m| m.origin.is_generated()).count()
    }

    /// Fraction of positive labels; `None` when unlabeled or empty.
    pub fn positive_rate(&self) -> Option<f64> {
        let labels = self.labels.as_ref()?;
        if labels.is_empty() {
            return None;
        }
        let pos = labels.iter().filter(|&&l| l == 1).count();
        Some(pos as f64 / labels.len() as f64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small() -> Dataset {
        Dataset::from_columns(
            vec!["a".into(), "b".into()],
            vec![vec![1.0, 2.0, 3.0], vec![4.0, 5.0, 6.0]],
            Some(vec![0, 1, 1]),
        )
        .unwrap()
    }

    #[test]
    fn construction_and_shape() {
        let ds = small();
        assert_eq!(ds.n_rows(), 3);
        assert_eq!(ds.n_cols(), 2);
        assert_eq!(ds.column(0).unwrap(), &[1.0, 2.0, 3.0]);
        assert_eq!(ds.column_by_name("b").unwrap(), &[4.0, 5.0, 6.0]);
        assert_eq!(ds.labels().unwrap(), &[0, 1, 1]);
    }

    #[test]
    fn rejects_mismatched_column() {
        let mut ds = small();
        let err = ds
            .push_column(FeatureMeta::original("c"), vec![1.0])
            .unwrap_err();
        assert!(matches!(err, DataError::ColumnLengthMismatch { .. }));
    }

    #[test]
    fn rejects_duplicate_name() {
        let mut ds = small();
        let err = ds
            .push_column(FeatureMeta::original("a"), vec![0.0; 3])
            .unwrap_err();
        assert_eq!(err, DataError::DuplicateFeature("a".into()));
    }

    #[test]
    fn rejects_bad_labels() {
        let mut ds = small();
        assert!(matches!(
            ds.set_labels(vec![0, 1]).unwrap_err(),
            DataError::LabelLengthMismatch { .. }
        ));
        assert!(matches!(
            ds.set_labels(vec![0, 1, 2]).unwrap_err(),
            DataError::InvalidLabel { row: 2, .. }
        ));
    }

    #[test]
    fn row_access_matches_columns() {
        let ds = small();
        assert_eq!(ds.row(1), vec![2.0, 5.0]);
        assert_eq!(ds.to_rows(), vec![vec![1.0, 4.0], vec![2.0, 5.0], vec![3.0, 6.0]]);
    }

    #[test]
    fn select_columns_preserves_meta_and_labels() {
        let ds = small();
        let sub = ds.select_columns(&[1]).unwrap();
        assert_eq!(sub.n_cols(), 1);
        assert_eq!(sub.feature_names(), vec!["b"]);
        assert_eq!(sub.labels().unwrap(), &[0, 1, 1]);
    }

    #[test]
    fn select_rows_subsets_everything() {
        let ds = small();
        let sub = ds.select_rows(&[2, 0]);
        assert_eq!(sub.n_rows(), 2);
        assert_eq!(sub.column(0).unwrap(), &[3.0, 1.0]);
        assert_eq!(sub.labels().unwrap(), &[1, 0]);
    }

    #[test]
    fn hstack_skips_duplicates() {
        let mut ds = small();
        let mut other = Dataset::with_rows(3);
        other
            .push_column(FeatureMeta::original("a"), vec![9.0; 3])
            .unwrap();
        other
            .push_column(
                FeatureMeta::generated("a+b", "add", vec!["a".into(), "b".into()]),
                vec![5.0, 7.0, 9.0],
            )
            .unwrap();
        let added = ds.hstack(&other).unwrap();
        assert_eq!(added, 1);
        assert_eq!(ds.n_cols(), 3);
        assert_eq!(ds.column_by_name("a").unwrap(), &[1.0, 2.0, 3.0]); // untouched
        assert_eq!(ds.n_generated(), 1);
    }

    #[test]
    fn positive_rate() {
        let ds = small();
        assert!((ds.positive_rate().unwrap() - 2.0 / 3.0).abs() < 1e-12);
        let unlabeled = Dataset::with_rows(5);
        assert_eq!(unlabeled.positive_rate(), None);
    }

    #[test]
    fn from_rows_round_trip() {
        let rows = vec![vec![1.0, 2.0], vec![3.0, 4.0]];
        let ds = Dataset::from_rows(vec!["x".into(), "y".into()], &rows, None).unwrap();
        assert_eq!(ds.to_rows(), rows);
    }

    #[test]
    fn generated_origin_flags() {
        let m = FeatureMeta::generated("div(a,b)", "div", vec!["a".into(), "b".into()]);
        assert!(m.origin.is_generated());
        assert!(!FeatureMeta::original("a").origin.is_generated());
    }
}
