//! Out-of-core chunk store: fixed-size row chunks with file-backed spill.
//!
//! The industrial tables SAFE targets do not fit in one worker's RAM; this
//! module is the storage substrate that lets a [`crate::dataset::Dataset`]
//! hold its base columns out of core. A [`ChunkStore`] slices the row range
//! into fixed-size chunks (`chunk_rows` rows each, the last chunk ragged),
//! stores each chunk column-major in its own spill file, and keeps at most
//! `resident_chunks` of them decoded in an LRU cache. Readers never see the
//! chunking directly — they go through the [`crate::column::ColumnRead`]
//! views a `Dataset` hands out — but the determinism story starts here:
//!
//! - **Chunk boundaries are a pure function of `(n_rows, chunk_rows)`**;
//!   neither cache state nor thread scheduling moves them.
//! - **Chunks are immutable once written.** The builder spills each chunk
//!   exactly once at ingest; reads decode the same bytes forever after, so
//!   a cache hit and a cache miss produce identical slices.
//! - **Iteration is fixed-order.** `for_each_col_chunk` walks chunks in
//!   ascending index order, so a sequential fold over the yielded slices
//!   visits every element in exactly the order a fold over the full column
//!   slice would — f64 reductions are never reassociated by chunking.
//!
//! Spill format: one file per chunk (`chunk_NNNNNN.bin`) of raw
//! little-endian f64s, column-major within the chunk (`n_cols * rows`
//! values). The store creates a uniquely named subdirectory under the
//! caller's spill directory and removes it — files and all — on drop, so
//! a fit never leaks spill segments (`scripts/check_oocore.sh` gates this).

use std::fs;
use std::io::{Read, Write};
use std::ops::Range;
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, PoisonError};

use crate::error::DataError;

/// Process-wide counter making concurrent stores' spill subdirectories
/// unique without reaching for a randomness source.
static SPILL_SEQ: AtomicU64 = AtomicU64::new(0);

/// Tuning knobs for a [`ChunkStore`]; carried by the CLI flags
/// `--chunk-rows`, `--resident-chunks`, and `--spill-dir`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ChunkOptions {
    /// Rows per chunk (the last chunk may be shorter). Must be >= 1.
    pub chunk_rows: usize,
    /// Maximum decoded chunks held resident at once. Must be >= 1.
    /// Ignored when `spill_dir` is `None` (everything stays resident).
    pub resident_chunks: usize,
    /// Directory to spill chunk files under. `None` keeps all chunks in
    /// memory (useful for differential tests that only exercise the
    /// chunked *iteration* order, not the I/O path).
    pub spill_dir: Option<PathBuf>,
}

impl ChunkOptions {
    /// In-memory chunking: fixed boundaries, no spill files.
    pub fn in_memory(chunk_rows: usize) -> Self {
        ChunkOptions { chunk_rows, resident_chunks: usize::MAX, spill_dir: None }
    }

    /// Spill-backed chunking with an LRU budget of `resident_chunks`.
    pub fn spilled(chunk_rows: usize, resident_chunks: usize, dir: impl Into<PathBuf>) -> Self {
        ChunkOptions { chunk_rows, resident_chunks, spill_dir: Some(dir.into()) }
    }

    fn validate(&self) -> Result<(), DataError> {
        if self.chunk_rows == 0 {
            return Err(DataError::Io("chunk_rows must be at least 1".into()));
        }
        if self.resident_chunks == 0 {
            return Err(DataError::Io("resident_chunks must be at least 1".into()));
        }
        Ok(())
    }
}

/// One decoded chunk: `rows` rows of every column, column-major.
#[derive(Debug)]
pub struct ChunkBuf {
    rows: usize,
    data: Vec<f64>,
}

impl ChunkBuf {
    /// Rows in this chunk.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// One column's values within this chunk.
    pub fn col(&self, c: usize) -> &[f64] {
        &self.data[c * self.rows..(c + 1) * self.rows]
    }

    fn bytes(&self) -> u64 {
        (self.data.len() * std::mem::size_of::<f64>()) as u64
    }
}

/// Cache/I-O counters for one store. All monotonic; read with
/// [`ChunkStore::stats`].
#[derive(Debug, Default)]
struct StoreCounters {
    hits: AtomicU64,
    loads: AtomicU64,
    evictions: AtomicU64,
    resident_bytes: AtomicU64,
    peak_resident_bytes: AtomicU64,
}

/// Snapshot of a store's cache behaviour, reported by the CLI after a
/// chunked fit and recorded in the `oocore` bench section.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct ChunkStats {
    /// Chunk requests served from the resident cache.
    pub hits: u64,
    /// Chunk requests that decoded a spill file (cache misses).
    pub loads: u64,
    /// Chunks dropped to stay within the resident budget.
    pub evictions: u64,
    /// Decoded chunk bytes resident right now.
    pub resident_bytes: u64,
    /// High-water mark of decoded chunk bytes.
    pub peak_resident_bytes: u64,
}

/// LRU of decoded chunks: most recently used at the back.
#[derive(Debug, Default)]
struct Lru {
    entries: Vec<(usize, Arc<ChunkBuf>)>,
}

/// The spill directory owned by one store; removed with its files on drop.
#[derive(Debug)]
struct SpillDir {
    dir: PathBuf,
    n_chunks: usize,
}

impl SpillDir {
    fn chunk_path(&self, idx: usize) -> PathBuf {
        self.dir.join(format!("chunk_{idx:06}.bin"))
    }
}

impl Drop for SpillDir {
    fn drop(&mut self) {
        for idx in 0..self.n_chunks {
            let _ = fs::remove_file(self.chunk_path(idx));
        }
        let _ = fs::remove_dir(&self.dir);
    }
}

/// Fixed-size row chunks of an immutable column-major table, at most a
/// budgeted number of them decoded at once. See the module docs for the
/// determinism contract.
#[derive(Debug)]
pub struct ChunkStore {
    n_rows: usize,
    n_cols: usize,
    chunk_rows: usize,
    resident_chunks: usize,
    spill: Option<SpillDir>,
    cache: Mutex<Lru>,
    counters: StoreCounters,
}

impl ChunkStore {
    /// Total rows across all chunks.
    pub fn n_rows(&self) -> usize {
        self.n_rows
    }

    /// Columns per chunk.
    pub fn n_cols(&self) -> usize {
        self.n_cols
    }

    /// Rows per full chunk.
    pub fn chunk_rows(&self) -> usize {
        self.chunk_rows
    }

    /// Number of chunks (`ceil(n_rows / chunk_rows)`).
    pub fn n_chunks(&self) -> usize {
        self.n_rows.div_ceil(self.chunk_rows)
    }

    /// True when chunks live in spill files rather than memory.
    pub fn is_spilled(&self) -> bool {
        self.spill.is_some()
    }

    /// Resident-budget in bytes: the most decoded chunk data the LRU will
    /// hold (`resident_chunks` full chunks). `None` when unspilled.
    pub fn budget_bytes(&self) -> Option<u64> {
        self.spill.as_ref().map(|_| {
            (self.resident_chunks * self.n_cols * self.chunk_rows * std::mem::size_of::<f64>())
                as u64
        })
    }

    /// Total logical size of the stored table in bytes.
    pub fn table_bytes(&self) -> u64 {
        (self.n_rows * self.n_cols * std::mem::size_of::<f64>()) as u64
    }

    /// Global row range of chunk `idx`.
    pub fn chunk_range(&self, idx: usize) -> Range<usize> {
        let start = idx * self.chunk_rows;
        start..self.n_rows.min(start + self.chunk_rows)
    }

    /// Cache-behaviour snapshot.
    pub fn stats(&self) -> ChunkStats {
        ChunkStats {
            hits: self.counters.hits.load(Ordering::Relaxed),
            loads: self.counters.loads.load(Ordering::Relaxed),
            evictions: self.counters.evictions.load(Ordering::Relaxed),
            resident_bytes: self.counters.resident_bytes.load(Ordering::Relaxed),
            peak_resident_bytes: self.counters.peak_resident_bytes.load(Ordering::Relaxed),
        }
    }

    fn lock_cache(&self) -> std::sync::MutexGuard<'_, Lru> {
        // A poisoned lock only means another reader panicked mid-touch;
        // the LRU list is still structurally sound (entries are moved,
        // never left half-written), so recover rather than propagate.
        self.cache.lock().unwrap_or_else(PoisonError::into_inner)
    }

    /// Fetch chunk `idx`, decoding its spill file on a miss. The returned
    /// `Arc` keeps the chunk alive even if the LRU evicts it concurrently.
    pub fn chunk(&self, idx: usize) -> Result<Arc<ChunkBuf>, DataError> {
        if idx >= self.n_chunks() {
            return Err(DataError::ColumnOutOfRange { index: idx, len: self.n_chunks() });
        }
        {
            let mut cache = self.lock_cache();
            if let Some(pos) = cache.entries.iter().position(|(i, _)| *i == idx) {
                let entry = cache.entries.remove(pos);
                let buf = Arc::clone(&entry.1);
                cache.entries.push(entry);
                self.counters.hits.fetch_add(1, Ordering::Relaxed);
                return Ok(buf);
            }
        }
        // Miss: decode outside the lock so concurrent readers of cached
        // chunks are never blocked on I/O.
        let buf = Arc::new(self.read_chunk(idx)?);
        self.counters.loads.fetch_add(1, Ordering::Relaxed);
        let mut cache = self.lock_cache();
        if let Some(pos) = cache.entries.iter().position(|(i, _)| *i == idx) {
            // Another thread decoded the same chunk while we were reading;
            // keep the cached copy and drop ours.
            let entry = cache.entries.remove(pos);
            let hit = Arc::clone(&entry.1);
            cache.entries.push(entry);
            return Ok(hit);
        }
        self.note_resident(buf.bytes());
        cache.entries.push((idx, Arc::clone(&buf)));
        while cache.entries.len() > self.resident_chunks {
            let (_, evicted) = cache.entries.remove(0);
            self.counters.evictions.fetch_add(1, Ordering::Relaxed);
            self.counters.resident_bytes.fetch_sub(evicted.bytes(), Ordering::Relaxed);
        }
        Ok(buf)
    }

    fn note_resident(&self, added: u64) {
        let now = self.counters.resident_bytes.fetch_add(added, Ordering::Relaxed) + added;
        self.counters.peak_resident_bytes.fetch_max(now, Ordering::Relaxed);
    }

    fn read_chunk(&self, idx: usize) -> Result<ChunkBuf, DataError> {
        let Some(spill) = &self.spill else {
            // Unspilled stores keep every chunk in the cache permanently;
            // reaching here means the cache was externally cleared.
            return Err(DataError::Io(format!("chunk {idx} missing from in-memory store")));
        };
        let rows = self.chunk_range(idx).len();
        let n_values = rows * self.n_cols;
        let mut bytes = vec![0u8; n_values * std::mem::size_of::<f64>()];
        let mut file = fs::File::open(spill.chunk_path(idx))?;
        file.read_exact(&mut bytes)?;
        let mut data = Vec::with_capacity(n_values);
        for v in bytes.chunks_exact(std::mem::size_of::<f64>()) {
            let mut raw = [0u8; 8];
            raw.copy_from_slice(v);
            data.push(f64::from_le_bytes(raw));
        }
        Ok(ChunkBuf { rows, data })
    }

    /// Stream one column's values over `range` in ascending chunk order —
    /// the primitive behind [`crate::column::ColumnRead::for_each_chunk`].
    pub fn for_each_col_chunk(
        &self,
        col: usize,
        range: Range<usize>,
        f: &mut dyn FnMut(&[f64]),
    ) -> Result<(), DataError> {
        if col >= self.n_cols {
            return Err(DataError::ColumnOutOfRange { index: col, len: self.n_cols });
        }
        let mut pos = range.start;
        while pos < range.end {
            let idx = pos / self.chunk_rows;
            let chunk = self.chunk(idx)?;
            let chunk_start = idx * self.chunk_rows;
            let lo = pos - chunk_start;
            let hi = (range.end - chunk_start).min(chunk.rows());
            f(&chunk.col(col)[lo..hi]);
            pos = chunk_start + hi;
        }
        Ok(())
    }

    /// Gather one full column into `buf` (cleared first).
    pub fn gather_column(&self, col: usize, buf: &mut Vec<f64>) -> Result<(), DataError> {
        buf.clear();
        buf.reserve(self.n_rows);
        self.for_each_col_chunk(col, 0..self.n_rows, &mut |c| buf.extend_from_slice(c))
    }
}

/// Streaming builder: rows in, spilled chunks out. Never holds more than
/// one chunk's worth of data — the CSV ingester pushes rows straight off
/// the reader, so the full table is never materialized.
#[derive(Debug)]
pub struct ChunkStoreBuilder {
    n_cols: usize,
    opts: ChunkOptions,
    spill: Option<SpillDir>,
    /// Row-major staging for the chunk being filled.
    pending: Vec<f64>,
    pending_rows: usize,
    finished: Vec<Arc<ChunkBuf>>,
    n_rows: usize,
}

impl ChunkStoreBuilder {
    /// Start building a store of `n_cols` columns under `opts`. Creates
    /// the spill subdirectory eagerly so ingest fails fast on a bad path.
    pub fn new(n_cols: usize, opts: ChunkOptions) -> Result<ChunkStoreBuilder, DataError> {
        opts.validate()?;
        let spill = match &opts.spill_dir {
            Some(base) => {
                let seq = SPILL_SEQ.fetch_add(1, Ordering::Relaxed);
                let dir = base.join(format!("safe-spill-{}-{seq}", std::process::id()));
                fs::create_dir_all(&dir)?;
                Some(SpillDir { dir, n_chunks: 0 })
            }
            None => None,
        };
        Ok(ChunkStoreBuilder {
            n_cols,
            pending: Vec::with_capacity(n_cols * opts.chunk_rows),
            opts,
            spill,
            pending_rows: 0,
            finished: Vec::new(),
            n_rows: 0,
        })
    }

    /// Append one row (`values.len()` must equal `n_cols`).
    pub fn push_row(&mut self, values: &[f64]) -> Result<(), DataError> {
        if values.len() != self.n_cols {
            return Err(DataError::RowShapeMismatch {
                row: self.n_rows,
                expected: self.n_cols,
                actual: values.len(),
            });
        }
        self.pending.extend_from_slice(values);
        self.pending_rows += 1;
        self.n_rows += 1;
        if self.pending_rows == self.opts.chunk_rows {
            self.flush_chunk()?;
        }
        Ok(())
    }

    fn flush_chunk(&mut self) -> Result<(), DataError> {
        if self.pending_rows == 0 {
            return Ok(());
        }
        let rows = self.pending_rows;
        // Transpose the row-major staging area to the chunk's column-major
        // layout.
        let mut data = vec![0.0f64; rows * self.n_cols];
        for r in 0..rows {
            for c in 0..self.n_cols {
                data[c * rows + r] = self.pending[r * self.n_cols + c];
            }
        }
        self.pending.clear();
        self.pending_rows = 0;
        let buf = ChunkBuf { rows, data };
        match &mut self.spill {
            Some(spill) => {
                let path = spill.chunk_path(spill.n_chunks);
                let mut bytes = Vec::with_capacity(buf.data.len() * 8);
                for v in &buf.data {
                    bytes.extend_from_slice(&v.to_le_bytes());
                }
                let mut file = fs::File::create(&path)?;
                file.write_all(&bytes)?;
                spill.n_chunks += 1;
            }
            None => self.finished.push(Arc::new(buf)),
        }
        Ok(())
    }

    /// Seal the store: flush the ragged tail chunk and hand over ownership
    /// of the spill directory.
    pub fn finish(mut self) -> Result<ChunkStore, DataError> {
        self.flush_chunk()?;
        let resident_chunks = if self.spill.is_some() {
            self.opts.resident_chunks
        } else {
            // Unspilled: the cache IS the storage, so it must never evict.
            usize::MAX
        };
        let store = ChunkStore {
            n_rows: self.n_rows,
            n_cols: self.n_cols,
            chunk_rows: self.opts.chunk_rows,
            resident_chunks,
            spill: self.spill.take(),
            cache: Mutex::new(Lru {
                entries: self.finished.drain(..).enumerate().collect(),
            }),
            counters: StoreCounters::default(),
        };
        let resident: u64 = {
            let cache = store.lock_cache();
            cache.entries.iter().map(|(_, b)| b.bytes()).sum()
        };
        store.note_resident(resident);
        Ok(store)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn build(n_rows: usize, n_cols: usize, opts: ChunkOptions) -> ChunkStore {
        let mut b = ChunkStoreBuilder::new(n_cols, opts).unwrap();
        for r in 0..n_rows {
            let row: Vec<f64> = (0..n_cols).map(|c| (r * n_cols + c) as f64).collect();
            b.push_row(&row).unwrap();
        }
        b.finish().unwrap()
    }

    #[test]
    fn in_memory_store_round_trips_columns() {
        let store = build(10, 3, ChunkOptions::in_memory(4));
        assert_eq!(store.n_chunks(), 3);
        let mut buf = Vec::new();
        store.gather_column(1, &mut buf).unwrap();
        let expect: Vec<f64> = (0..10).map(|r| (r * 3 + 1) as f64).collect();
        assert_eq!(buf, expect);
    }

    #[test]
    fn spilled_store_round_trips_and_evicts() {
        let dir = std::env::temp_dir().join("safe_chunk_test_spill");
        std::fs::create_dir_all(&dir).unwrap();
        let store = build(100, 2, ChunkOptions::spilled(8, 2, &dir));
        assert!(store.is_spilled());
        assert_eq!(store.n_chunks(), 13);
        let mut buf = Vec::new();
        store.gather_column(0, &mut buf).unwrap();
        let expect: Vec<f64> = (0..100).map(|r| (r * 2) as f64).collect();
        assert_eq!(buf, expect);
        let stats = store.stats();
        assert!(stats.loads >= 13, "every chunk must be decoded at least once");
        assert!(stats.evictions > 0, "budget of 2 chunks must evict");
        assert!(stats.peak_resident_bytes <= store.budget_bytes().unwrap() + 8 * 2 * 8);
    }

    #[test]
    fn spill_files_removed_on_drop() {
        let dir = std::env::temp_dir().join("safe_chunk_test_cleanup");
        std::fs::create_dir_all(&dir).unwrap();
        let subdirs_before = std::fs::read_dir(&dir).unwrap().count();
        let store = build(20, 1, ChunkOptions::spilled(4, 1, &dir));
        let mut buf = Vec::new();
        store.gather_column(0, &mut buf).unwrap();
        drop(store);
        assert_eq!(std::fs::read_dir(&dir).unwrap().count(), subdirs_before);
    }

    #[test]
    fn chunk_iteration_respects_ranges() {
        let store = build(10, 1, ChunkOptions::in_memory(4));
        let mut got = Vec::new();
        store.for_each_col_chunk(0, 3..9, &mut |c| got.extend_from_slice(c)).unwrap();
        let expect: Vec<f64> = (3..9).map(|r| r as f64).collect();
        assert_eq!(got, expect);
    }

    #[test]
    fn ragged_rows_rejected() {
        let mut b = ChunkStoreBuilder::new(3, ChunkOptions::in_memory(4)).unwrap();
        b.push_row(&[1.0, 2.0, 3.0]).unwrap();
        let err = b.push_row(&[1.0]).unwrap_err();
        assert!(matches!(err, DataError::RowShapeMismatch { row: 1, expected: 3, actual: 1 }));
    }

    #[test]
    fn zero_options_rejected() {
        assert!(ChunkStoreBuilder::new(1, ChunkOptions::in_memory(0)).is_err());
        let bad = ChunkOptions { chunk_rows: 4, resident_chunks: 0, spill_dir: None };
        assert!(ChunkStoreBuilder::new(1, bad).is_err());
    }
}
