//! Property tests for the data layer: dataset algebra, CSV codec, binning.

use proptest::prelude::*;

use safe_data::binning::{BinEdges, BinStrategy};
use safe_data::csv::{read_csv_str, write_csv_string};
use safe_data::dataset::Dataset;
use safe_data::split::{shuffled_indices, train_test_split};

fn arb_dataset() -> impl Strategy<Value = Dataset> {
    (1usize..6, 1usize..40).prop_flat_map(|(n_cols, n_rows)| {
        let cols = prop::collection::vec(
            prop::collection::vec(-1e9f64..1e9, n_rows..=n_rows),
            n_cols..=n_cols,
        );
        let labels = prop::collection::vec(0u8..=1, n_rows..=n_rows);
        (cols, labels).prop_map(|(cols, labels)| {
            let names = (0..cols.len()).map(|i| format!("f{i}")).collect();
            Dataset::from_columns(names, cols, Some(labels)).unwrap()
        })
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn row_column_duality(ds in arb_dataset()) {
        let rows = ds.to_rows();
        for (c, col) in ds.columns().enumerate() {
            for r in 0..ds.n_rows() {
                prop_assert_eq!(rows[r][c], col[r]);
            }
        }
    }

    #[test]
    fn select_rows_then_columns_commutes(ds in arb_dataset()) {
        let row_idx: Vec<usize> = (0..ds.n_rows()).step_by(2).collect();
        let col_idx: Vec<usize> = (0..ds.n_cols()).collect();
        let a = ds.select_rows(&row_idx).select_columns(&col_idx).unwrap();
        let b = ds.select_columns(&col_idx).unwrap().select_rows(&row_idx);
        prop_assert_eq!(a, b);
    }

    #[test]
    fn csv_round_trip(ds in arb_dataset()) {
        let text = write_csv_string(&ds);
        let back = read_csv_str(&text, Some("label")).unwrap();
        prop_assert_eq!(back.n_rows(), ds.n_rows());
        prop_assert_eq!(back.n_cols(), ds.n_cols());
        prop_assert_eq!(back.labels(), ds.labels());
        for (a, b) in back.columns().zip(ds.columns()) {
            for (x, y) in a.iter().zip(b) {
                prop_assert!(x == y || (x.is_nan() && y.is_nan()));
            }
        }
    }

    #[test]
    fn split_partitions_rows(ds in arb_dataset(), frac in 0.1f64..0.9, seed in any::<u64>()) {
        prop_assume!(ds.n_rows() >= 4);
        let (train, test) = train_test_split(&ds, frac, seed).unwrap();
        prop_assert_eq!(train.n_rows() + test.n_rows(), ds.n_rows());
        prop_assert_eq!(train.n_cols(), ds.n_cols());
    }

    #[test]
    fn shuffle_is_permutation(n in 0usize..500, seed in any::<u64>()) {
        let mut idx = shuffled_indices(n, seed);
        idx.sort_unstable();
        prop_assert_eq!(idx, (0..n).collect::<Vec<_>>());
    }

    #[test]
    fn bin_of_is_monotone(
        mut values in prop::collection::vec(-1e6f64..1e6, 2..100),
        n_bins in 2usize..20,
    ) {
        let edges = BinEdges::fit(&values, n_bins, BinStrategy::EqualFrequency).unwrap();
        values.sort_by(|a, b| a.partial_cmp(b).unwrap());
        for w in values.windows(2) {
            prop_assert!(edges.bin_of(w[0]) <= edges.bin_of(w[1]));
        }
        // Bin indices stay below the declared count.
        for &v in &values {
            prop_assert!(edges.bin_of(v) < edges.n_value_bins());
        }
    }

    #[test]
    fn equal_width_bins_have_equal_span(
        values in prop::collection::vec(-1e3f64..1e3, 3..100),
        n_bins in 2usize..12,
    ) {
        let edges = BinEdges::fit(&values, n_bins, BinStrategy::EqualWidth).unwrap();
        let cuts = edges.cuts();
        if cuts.len() >= 2 {
            let w0 = cuts[1] - cuts[0];
            for w in cuts.windows(2) {
                prop_assert!(((w[1] - w[0]) - w0).abs() < 1e-6 * w0.abs().max(1.0));
            }
        }
    }
}
