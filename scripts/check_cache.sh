#!/usr/bin/env sh
# Verify the cross-iteration cache contract (DESIGN.md section 12): cached
# runs (bin cache + stats cache + histogram subtraction) must be
# bit-identical to cold `cache: false` runs on every dataset shape and
# thread budget the differential suite covers, the incremental
# `BinnedDataset::extend_with` path must equal a fresh fit of the
# concatenated matrix, and warm iterations must actually reuse cached
# columns (telemetry hit counters).
#
# Usage: scripts/check_cache.sh

set -eu

cd "$(dirname "$0")/.."

echo "check_cache: cached-vs-cold differential suite"
cargo test --quiet --test cache_differential

echo "check_cache: binner + booster cache unit suites"
cargo test --quiet -p safe-gbm binner
cargo test --quiet -p safe-gbm booster::tests::fit_cached_is_bit_identical_to_fit
cargo test --quiet -p safe-core cache

echo "check_cache: OK — cached runs are bit-identical and warm iterations reuse work"
