#!/usr/bin/env sh
# Verify the scoring-daemon contract (DESIGN.md, "The serving daemon"):
#   1. The queue and service unit suites (MPMC delivery, coalescing,
#      backpressure, close-and-drain, swap version stamping).
#   2. The daemon differential: streamed scores are bit-identical to the
#      offline ScorerHandle at worker counts {1,2,4}, under ragged
#      submission patterns, and across mid-stream artifact hot-swaps —
#      every response's (version, score_bits) pair matches a
#      single-artifact offline replay.
#   3. The CLI surface: serve's JSONL loop (including a hot-swap) and
#      bench-serve's serving_daemon section of BENCH_pipeline.json.
#   4. The bench gate: a bench-serve run self-compares clean through
#      bench-diff (exit 0), and an injected regression trips exit 8.
#
# Usage: scripts/check_serve_daemon.sh

set -eu

cd "$(dirname "$0")/.."

echo "check_serve_daemon: queue + service unit suites"
cargo test --quiet -p safe-serve queue::
cargo test --quiet -p safe-serve service::

echo "check_serve_daemon: streamed-vs-offline differential (workers x chunking x swaps)"
cargo test --quiet --test serve_daemon_differential

echo "check_serve_daemon: CLI serve/bench-serve end-to-end"
cargo test --quiet -p safe-cli daemon_commands_reject_nonpositive_tuning_flags
cargo test --quiet -p safe-cli serve_daemon_scores_jsonl_and_hot_swaps_mid_stream
cargo test --quiet -p safe-cli bench_serve_writes_daemon_section_preserving_others

echo "check_serve_daemon: bench-serve -> bench-diff exit-code contract"
cargo build --quiet --release -p safe-cli
CLI=target/release/safe-cli
WORK=$(mktemp -d)
trap 'rm -rf "$WORK"' EXIT

# Enough requests that wall secs is comfortably nonzero at 4 decimals
# (a 0.0000 baseline would make any growth read as 0% and skip the gate).
"$CLI" bench-serve --requests 10000 --workers 1,2 \
    --pipeline-out "$WORK/baseline.json" >/dev/null

# Self-compare: identical documents never regress.
"$CLI" bench-diff "$WORK/baseline.json" "$WORK/baseline.json" >/dev/null

# Inject a 10x wall-time regression into the serving_daemon rows; the
# (clearly above the 0.05s noise floor) candidate must trip exit 8.
sed 's/"secs":\([0-9]*\)\./"secs":\19./g' "$WORK/baseline.json" > "$WORK/regressed.json"
if "$CLI" bench-diff "$WORK/baseline.json" "$WORK/regressed.json" >/dev/null 2>&1; then
    echo "check_serve_daemon: FAIL — injected serving_daemon regression passed the gate"
    exit 1
else
    code=$?
    if [ "$code" -ne 8 ]; then
        echo "check_serve_daemon: FAIL — expected exit 8 from bench-diff, got $code"
        exit 1
    fi
fi

echo "check_serve_daemon: OK — daemon scores are bit-stable across workers, coalescing, and hot swaps"
