#!/usr/bin/env sh
# Verify the serving determinism contract (DESIGN.md, "Serving: artifacts
# & the batch scorer"):
#   1. SafeArtifact text/disk round trips preserve score bits (including
#      property tests over arbitrary plans with NaN params and unicode
#      feature names).
#   2. The batch Scorer is bit-identical to the in-process column path for
#      threads in {1,2,4,7} and across batch sizes.
#   3. The CLI end-to-end path (fit -> save-artifact -> score) reproduces
#      the validation AUC recorded inside the artifact bit-for-bit, and a
#      tampered artifact is rejected by its checksum.
#
# Usage: scripts/check_serving.sh

set -eu

cd "$(dirname "$0")/.."

echo "check_serving: artifact + scorer unit and property suites"
cargo test --quiet -p safe-serve

echo "check_serving: serial-vs-parallel scorer differential on a real fit"
cargo test --quiet --test serving_differential

echo "check_serving: CLI end-to-end (fit -> save-artifact -> score)"
cargo test --quiet -p safe-cli save_artifact_then_score_reproduces_validation_auc_bitwise
cargo test --quiet -p safe-cli serving_commands_classify_errors

echo "check_serving: OK — artifacts round-trip and scoring is bit-stable"
