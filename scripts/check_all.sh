#!/usr/bin/env sh
# Run every repository gate in sequence: determinism, telemetry, metrics &
# profiling exports, serving, caching, crash safety, the out-of-core
# backend, and the no-panic clippy gate. This is the one
# entry point CI (or a pre-merge human) needs; each sub-script prints its
# own `OK` line and any failure aborts the aggregate immediately.
#
# Usage: scripts/check_all.sh

set -eu

cd "$(dirname "$0")/.."

for check in \
    check_determinism \
    check_telemetry \
    check_metrics \
    check_selection \
    check_serving \
    check_serve_daemon \
    check_cache \
    check_crash_safety \
    check_oocore \
    check_panics; do
    echo "==> scripts/${check}.sh"
    sh "scripts/${check}.sh"
done

echo "check_all: OK — all gates passed"
