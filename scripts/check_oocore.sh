#!/usr/bin/env sh
# Validate the out-of-core backend end to end: (1) the resident-vs-chunked
# differential suite must pass (bit-identical plans, histories, structural
# reports, and AUC bits across thread counts and chunk sizes, plus the
# spill-backed >=10x-budget fit), (2) a CLI fit with `--chunk-rows` +
# `--spill-dir` must produce byte-identical plan output to the resident
# fit AND leave the spill directory empty on exit (no leaked segments),
# (3) `--spill-dir` without `--chunk-rows` must be rejected as a usage
# error (exit 2), and (4) the bench regression gate must accept the
# `oocore` section of BENCH_pipeline.json — self-compare exits 0.
#
# Usage: scripts/check_oocore.sh

set -eu

cd "$(dirname "$0")/.."

WORK="${TMPDIR:-/tmp}/safe_check_oocore_$$"
mkdir -p "$WORK"
trap 'rm -rf "$WORK"' EXIT

# 1. The differential suite is the core contract.
echo "check_oocore: running the resident-vs-chunked differential suite"
cargo test --quiet --test oocore_differential

echo "check_oocore: building safe-cli"
cargo build --quiet --release -p safe-cli
CLI=target/release/safe-cli

# A tiny training set whose label depends on a*b.
awk 'BEGIN {
    print "a,b,noise,label"
    for (i = 0; i < 300; i++) {
        a = ((i * 37) % 100) / 50.0 - 1.0
        b = ((i * 61) % 100) / 50.0 - 1.0
        print a "," b "," ((i * 17) % 100) "," ((a * b > 0) ? 1 : 0)
    }
}' > "$WORK/train.csv"

# 2. A spill-backed CLI fit matches the resident fit byte-for-byte...
echo "check_oocore: spilled CLI fit is byte-identical to the resident fit"
"$CLI" fit --input "$WORK/train.csv" --plan "$WORK/resident.safeplan" --seed 3 \
    >/dev/null 2>&1
mkdir -p "$WORK/spill"
"$CLI" fit --input "$WORK/train.csv" --plan "$WORK/spilled.safeplan" --seed 3 \
    --chunk-rows 32 --spill-dir "$WORK/spill" --resident-chunks 2 >/dev/null 2>&1
if ! cmp -s "$WORK/resident.safeplan" "$WORK/spilled.safeplan"; then
    echo "check_oocore: FAILED — spilled fit diverged from the resident plan" >&2
    exit 1
fi

# ...and reclaims every spill segment on exit.
leftovers=$(find "$WORK/spill" -type f | wc -l)
if [ "$leftovers" -ne 0 ]; then
    echo "check_oocore: FAILED — $leftovers spill segment(s) leaked:" >&2
    find "$WORK/spill" -type f >&2
    exit 1
fi

# 3. --spill-dir without --chunk-rows is a usage error (exit 2), not a crash.
set +e
"$CLI" fit --input "$WORK/train.csv" --plan "$WORK/bad.safeplan" --seed 3 \
    --spill-dir "$WORK/spill" >/dev/null 2>&1
code=$?
set -e
if [ "$code" -ne 2 ]; then
    echo "check_oocore: FAILED — --spill-dir without --chunk-rows exited $code, want 2" >&2
    exit 1
fi

# 4. bench-diff accepts the oocore section: self-compare exits 0.
"$CLI" bench-diff BENCH_pipeline.json BENCH_pipeline.json >/dev/null

echo "check_oocore: OK — backends bit-identical, spill segments reclaimed, flags validated, bench-diff gates"
