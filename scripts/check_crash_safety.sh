#!/usr/bin/env sh
# Verify the crash-safety contract (DESIGN.md section 13): killing a run at
# any checkpoint failpoint and resuming must reproduce the uninterrupted
# run bit-for-bit (plans, funnel history, structural reports, downstream
# AUC bits) at every thread budget the chaos suite covers; torn or corrupt
# snapshots must be quarantined with fallback to the previous good one; the
# SAFECKPT codec must round-trip hostile inputs; and the failpoint roster,
# its call sites, its fault suites, and the DESIGN.md table must agree.
#
# Usage: scripts/check_crash_safety.sh

set -eu

cd "$(dirname "$0")/.."

echo "check_crash_safety: I/O fault chaos suite (kill + resume differentials)"
cargo test --quiet --features failpoints --test crash_differential

echo "check_crash_safety: failpoint registry drift"
cargo test --quiet --test failpoint_registry_drift

echo "check_crash_safety: SAFECKPT codec property suite + store unit suite"
cargo test --quiet -p safe-core --test proptest_checkpoint
cargo test --quiet -p safe-core checkpoint

echo "check_crash_safety: OK — kill/resume is bit-identical and corruption is quarantined"
