#!/usr/bin/env sh
# Verify the parallel determinism contract (DESIGN.md, "Parallel execution
# & determinism contract"): the serial-vs-parallel differential suite must
# show bit-identical outcomes for threads in {1,2,4,7}, and an injected
# worker panic under threads=4 must degrade the iteration instead of
# hanging or unwinding (failpoints build).
#
# Usage: scripts/check_determinism.sh

set -eu

cd "$(dirname "$0")/.."

echo "check_determinism: serial-vs-parallel differential suite"
cargo test --quiet --test parallel_differential

echo "check_determinism: worker-panic smoke under threads=4 (failpoints)"
cargo test --quiet --features failpoints --test parallel_differential \
    failpoint_differential

echo "check_determinism: OK — parallel runs are bit-identical and panic-safe"
