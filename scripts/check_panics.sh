#!/usr/bin/env sh
# Fail if any hardened crate's library code reintroduces unwrap()/expect().
#
# The hardened crates (safe-data, safe-gbm, safe-ops, safe-core, safe-obs,
# safe-serve) carry
# `#![warn(clippy::unwrap_used, clippy::expect_used)]`; this script promotes
# those warnings to errors so CI can gate on them. Tests are exempt — each
# crate allows the lints under #[cfg(test)].
#
# Usage: scripts/check_panics.sh

set -eu

cd "$(dirname "$0")/.."

if ! cargo clippy --version >/dev/null 2>&1; then
    echo "check_panics: cargo clippy is not installed; skipping" >&2
    exit 0
fi

cargo clippy \
    -p safe-data -p safe-gbm -p safe-ops -p safe-core -p safe-obs \
    -p safe-serve \
    --no-deps --lib --quiet -- \
    -D clippy::unwrap_used \
    -D clippy::expect_used

echo "check_panics: OK — no unwrap/expect in hardened library code"
