#!/usr/bin/env sh
# Validate the telemetry layer end to end: run the quickstart example with a
# JSONL trace attached, then check every emitted line is a well-formed event
# (valid JSON carrying the required `ts_us`, `event`, `stage` keys and a
# known event kind) using the CLI's own `trace-check` validator.
#
# Usage: scripts/check_telemetry.sh

set -eu

cd "$(dirname "$0")/.."

TRACE="${TMPDIR:-/tmp}/safe_check_telemetry_$$.jsonl"
trap 'rm -f "$TRACE"' EXIT

echo "check_telemetry: running quickstart with SAFE_TRACE_JSONL=$TRACE"
SAFE_TRACE_JSONL="$TRACE" cargo run --quiet --release --example quickstart >/dev/null

if [ ! -s "$TRACE" ]; then
    echo "check_telemetry: FAILED — trace file is empty or missing" >&2
    exit 1
fi

cargo run --quiet --release -p safe-cli -- trace-check --input "$TRACE"

# The trace must cover every core pipeline stage at least once.
for stage in gbm-train path-extract rank-combos generate iv-filter \
             redundancy-filter rank-topk iteration; do
    if ! grep -q "\"stage\":\"$stage\"" "$TRACE"; then
        echo "check_telemetry: FAILED — no events for stage '$stage'" >&2
        exit 1
    fi
done

echo "check_telemetry: OK — $(wc -l < "$TRACE" | tr -d ' ') events, all stages covered"
