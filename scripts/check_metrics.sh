#!/usr/bin/env sh
# Validate the metrics & profiling layer end to end: one CLI fit with every
# export flag attached must produce (1) a Chrome trace that the CLI's own
# `trace-check --format chrome` validator accepts, (2) a non-empty
# Prometheus exposition with histogram TYPE metadata and the mandatory
# +Inf bucket, (3) non-empty folded flamegraph stacks — and the bench
# regression gate must pass a self-compare of BENCH_pipeline.json and fail
# an injected regression with exit code 8.
#
# Usage: scripts/check_metrics.sh

set -eu

cd "$(dirname "$0")/.."

WORK="${TMPDIR:-/tmp}/safe_check_metrics_$$"
mkdir -p "$WORK"
trap 'rm -rf "$WORK"' EXIT

echo "check_metrics: building safe-cli"
cargo build --quiet --release -p safe-cli
CLI=target/release/safe-cli

# A tiny training set whose label depends on a*b.
awk 'BEGIN {
    print "a,b,noise,label"
    for (i = 0; i < 300; i++) {
        a = ((i * 37) % 100) / 50.0 - 1.0
        b = ((i * 61) % 100) / 50.0 - 1.0
        print a "," b "," ((i * 17) % 100) "," ((a * b > 0) ? 1 : 0)
    }
}' > "$WORK/train.csv"

echo "check_metrics: fitting with --trace-chrome/--metrics-prom/--flame-folded"
"$CLI" fit --input "$WORK/train.csv" --plan "$WORK/plan.safeplan" --seed 3 \
    --trace-chrome "$WORK/trace.json" \
    --metrics-prom "$WORK/metrics.prom" \
    --flame-folded "$WORK/stacks.folded" 2>/dev/null

# 1. Chrome trace validates under the CLI's own checker.
"$CLI" trace-check --input "$WORK/trace.json" --format chrome

# 2. Prometheus exposition is non-empty and structurally sound.
for needle in "# TYPE safe_stage_us histogram" "safe_stage_us_bucket{" \
              'le="+Inf"' "safe_stage_us_count" "safe_gbm_round_us"; do
    if ! grep -qF "$needle" "$WORK/metrics.prom"; then
        echo "check_metrics: FAILED — prometheus output missing '$needle'" >&2
        exit 1
    fi
done

# 3. Folded stacks nest stages under the iteration frame.
if ! grep -q "^iteration;" "$WORK/stacks.folded"; then
    echo "check_metrics: FAILED — folded stacks have no nested frames" >&2
    exit 1
fi

# 4. bench-diff: self-compare of the checked-in document exits 0...
"$CLI" bench-diff BENCH_pipeline.json BENCH_pipeline.json >/dev/null

# ...and an injected across-the-board 10x slowdown trips the gate (exit 8).
sed -e 's/"millis":\([0-9]*\)\./"millis":\19./g' \
    -e 's/"secs":\([0-9]*\)\./"secs":\19./g' \
    BENCH_pipeline.json > "$WORK/regressed.json"
set +e
"$CLI" bench-diff BENCH_pipeline.json "$WORK/regressed.json" >/dev/null 2>&1
code=$?
set -e
if [ "$code" -ne 8 ]; then
    echo "check_metrics: FAILED — injected regression exited $code, want 8" >&2
    exit 1
fi

echo "check_metrics: OK — chrome trace valid, prom output sound, bench-diff gates"
