#!/usr/bin/env sh
# Validate the selection-mode surface end to end: (1) a CLI fit with
# `--selection exact` must produce byte-identical plan output to a fit
# that never mentions the flag (exact is the default and is pinned to the
# seed pipeline), (2) `--selection staged` must fit successfully and
# produce a non-empty plan, (3) an invalid mode must be rejected as a
# usage error (exit 2), and (4) the bench regression gate must cover the
# `selection` section of BENCH_pipeline.json — self-compare passes, an
# injected slowdown of the staged row trips exit code 8.
#
# Usage: scripts/check_selection.sh

set -eu

cd "$(dirname "$0")/.."

WORK="${TMPDIR:-/tmp}/safe_check_selection_$$"
mkdir -p "$WORK"
trap 'rm -rf "$WORK"' EXIT

echo "check_selection: building safe-cli"
cargo build --quiet --release -p safe-cli
CLI=target/release/safe-cli

# A tiny training set whose label depends on a*b.
awk 'BEGIN {
    print "a,b,noise,label"
    for (i = 0; i < 300; i++) {
        a = ((i * 37) % 100) / 50.0 - 1.0
        b = ((i * 61) % 100) / 50.0 - 1.0
        print a "," b "," ((i * 17) % 100) "," ((a * b > 0) ? 1 : 0)
    }
}' > "$WORK/train.csv"

# 1. Exact mode is the default: explicit flag and no flag agree byte-wise.
echo "check_selection: exact mode is byte-identical to the default"
"$CLI" fit --input "$WORK/train.csv" --plan "$WORK/default.safeplan" --seed 3 \
    >/dev/null 2>&1
"$CLI" fit --input "$WORK/train.csv" --plan "$WORK/exact.safeplan" --seed 3 \
    --selection exact >/dev/null 2>&1
if ! cmp -s "$WORK/default.safeplan" "$WORK/exact.safeplan"; then
    echo "check_selection: FAILED — --selection exact diverged from the default plan" >&2
    exit 1
fi

# 2. Staged mode fits and writes a non-empty plan.
echo "check_selection: staged mode fits"
"$CLI" fit --input "$WORK/train.csv" --plan "$WORK/staged.safeplan" --seed 3 \
    --selection staged >/dev/null 2>&1
if ! [ -s "$WORK/staged.safeplan" ]; then
    echo "check_selection: FAILED — staged fit produced an empty plan" >&2
    exit 1
fi

# 3. An unknown mode is a usage error (exit 2), not a crash.
set +e
"$CLI" fit --input "$WORK/train.csv" --plan "$WORK/bad.safeplan" --seed 3 \
    --selection sloppy >/dev/null 2>&1
code=$?
set -e
if [ "$code" -ne 2 ]; then
    echo "check_selection: FAILED — invalid --selection exited $code, want 2" >&2
    exit 1
fi

# 4. bench-diff gates the selection section: self-compare exits 0...
"$CLI" bench-diff BENCH_pipeline.json BENCH_pipeline.json >/dev/null

# ...and a 10x regression injected into combined_millis trips exit 8.
sed -e 's/"combined_millis":\([0-9]*\)\./"combined_millis":\19./g' \
    BENCH_pipeline.json > "$WORK/regressed.json"
set +e
"$CLI" bench-diff BENCH_pipeline.json "$WORK/regressed.json" >/dev/null 2>&1
code=$?
set -e
if [ "$code" -ne 8 ]; then
    echo "check_selection: FAILED — injected selection regression exited $code, want 8" >&2
    exit 1
fi

echo "check_selection: OK — exact pinned, staged fits, flag validated, bench-diff gates"
