//! Real-time inference: serialize the learned plan, ship it to a "serving
//! process" (here: a fresh parse), and score single records — the paper's
//! third industrial requirement ("once an instance is inputted, the feature
//! should be produced instantly").
//!
//! ```sh
//! cargo run --release --example realtime_inference
//! ```

use std::time::Instant;

use safe::core::plan::FeaturePlan;
use safe::core::{Safe, SafeConfig};
use safe::datagen::benchmarks::{generate_benchmark_scaled, BenchmarkId};
use safe::ops::registry::OperatorRegistry;

fn main() {
    // --- offline: learn Ψ and persist it ---------------------------------
    let split = generate_benchmark_scaled(BenchmarkId::Wind, 0.2, 5);
    let config = SafeConfig::builder().seed(5).build().expect("valid config");
    let outcome = Safe::new(config)
        .fit(&split.train, split.valid.as_ref())
        .expect("SAFE fits");
    let text = outcome.plan.to_text();
    println!(
        "serialized plan: {} bytes, {} steps, {} outputs",
        text.len(),
        outcome.plan.steps.len(),
        outcome.plan.outputs.len()
    );
    println!("--- plan (first 6 lines) ---");
    for line in text.lines().take(6) {
        println!("{line}");
    }
    println!("----------------------------\n");

    // --- online: a serving process parses and compiles once --------------
    let served = FeaturePlan::from_text(&text).expect("plan parses");
    let compiled = served
        .compile(&OperatorRegistry::standard())
        .expect("plan compiles");

    // Verify online row scoring agrees with offline batch transformation.
    let batch = compiled.apply(&split.test).expect("batch applies");
    let mut max_diff = 0.0f64;
    for i in 0..split.test.n_rows().min(200) {
        let online = compiled.apply_row(&split.test.row(i)).expect("row scores");
        for (c, &v) in online.iter().enumerate() {
            let b = batch.column(c).unwrap()[i];
            if v.is_finite() && b.is_finite() {
                max_diff = max_diff.max((v - b).abs());
            }
        }
    }
    println!("online vs batch max |diff| over 200 rows: {max_diff:e}");

    // Latency: generate features for one event.
    let probe = split.test.row(0);
    let n = 100_000;
    let start = Instant::now();
    let mut sink = 0.0;
    for _ in 0..n {
        sink += compiled.apply_row(&probe).expect("row scores")[0];
    }
    let elapsed = start.elapsed();
    println!(
        "feature generation latency: {:.2} ns/event ({} events in {:.3}s, checksum {sink:.1})",
        elapsed.as_nanos() as f64 / n as f64,
        n,
        elapsed.as_secs_f64()
    );
}
