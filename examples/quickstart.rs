//! Quickstart: run SAFE on a synthetic dataset and measure the AUC lift.
//!
//! ```sh
//! cargo run --release --example quickstart
//! # with a telemetry trace:
//! SAFE_TRACE_JSONL=trace.jsonl cargo run --release --example quickstart
//! ```

use std::sync::Arc;

use safe::core::{Safe, SafeConfig};
use safe::datagen::benchmarks::{generate_benchmark_scaled, BenchmarkId};
use safe::models::classifier::{evaluate_auc, ClassifierKind};
use safe::obs::{JsonlSink, SinkHandle};

fn main() {
    // 1. Data: a scaled-down stand-in for the paper's `magic` benchmark.
    let split = generate_benchmark_scaled(BenchmarkId::Magic, 0.1, 42);
    println!(
        "dataset: {} train rows, {} features",
        split.train.n_rows(),
        split.train.n_cols()
    );

    // Optional telemetry: SAFE_TRACE_JSONL=<path> streams pipeline events
    // (one JSON object per line) to that file while SAFE fits.
    let sink = match std::env::var("SAFE_TRACE_JSONL") {
        Ok(path) => {
            let jsonl = JsonlSink::to_file(&path).expect("create trace file");
            println!("tracing pipeline events to {path}");
            SinkHandle::new(Arc::new(jsonl))
        }
        Err(_) => SinkHandle::null(),
    };

    // 2. Learn the feature-generation function Ψ (one SAFE iteration,
    //    arithmetic operators, IV/Pearson/gain selection — paper defaults).
    let safe_engine = Safe::new(
        SafeConfig::builder()
            .sink(sink)
            .build()
            .expect("valid config"),
    );
    let outcome = safe_engine
        .fit(&split.train, split.valid.as_ref())
        .expect("SAFE fits");
    let report = outcome.history.last().expect("at least one iteration");
    println!(
        "SAFE: mined {} combinations, generated {} features, selected {}",
        report.n_combinations, report.n_generated, report.n_selected
    );
    println!("selected features: {:?}", outcome.plan.outputs);

    // 3. Apply Ψ to all splits.
    let train_new = outcome.plan.apply(&split.train).expect("plan applies");
    let test_new = outcome.plan.apply(&split.test).expect("plan applies");

    // 4. Compare a downstream classifier with and without SAFE.
    for clf in [ClassifierKind::Lr, ClassifierKind::Rf, ClassifierKind::Xgb] {
        let before = evaluate_auc(clf, &split.train, &split.test, 0).expect("trains");
        let after = evaluate_auc(clf, &train_new, &test_new, 0).expect("trains");
        println!(
            "{:>4}: AUC {:.4} -> {:.4}  ({:+.4})",
            clf.abbrev(),
            before,
            after,
            after - before
        );
    }
}
