//! Interpretability: the paper's industrial requirement that generated
//! features "can be easily explained". This example prints the analyst-
//! facing artifacts: per-feature formulas with IV, and the miner model's
//! tree dump.
//!
//! ```sh
//! cargo run --release --example interpretability
//! ```

use safe::core::explain::{explain_plan, explanation_report};
use safe::core::{Safe, SafeConfig};
use safe::datagen::synth::{generate, SyntheticConfig};
use safe::gbm::booster::Gbm;
use safe::gbm::config::GbmConfig;
use safe::gbm::dump::dump_tree;

fn main() {
    let ds = generate(&SyntheticConfig {
        n_rows: 3_000,
        dim: 8,
        n_signal: 4,
        n_interactions: 3,
        seed: 33,
        ..Default::default()
    });

    let config = SafeConfig::builder().seed(33).build().expect("valid config");
    let outcome = Safe::new(config).fit(&ds, None).expect("SAFE fits");

    // 1. Feature report: formula + construction depth + IV on the train set.
    println!("=== engineered feature report ===");
    let explanations = explain_plan(&outcome.plan, Some(&ds));
    print!("{}", explanation_report(&explanations));

    // 2. Deepest construction, spelled out.
    if let Some(deepest) = explanations.iter().max_by_key(|e| e.depth) {
        println!(
            "\ndeepest feature: {} (depth {}) = {}",
            deepest.name, deepest.depth, deepest.formula
        );
    }

    // 3. The miner model itself is inspectable: dump its first tree.
    let miner = Gbm::new(GbmConfig::miner()).fit(&ds, None).expect("trains");
    let names = ds.feature_names();
    println!("\n=== first miner tree (paths feed SAFE's combinations) ===");
    print!("{}", dump_tree(&miner.trees()[0], &names));
}
