//! Fraud detection: SAFE on an imbalanced, fraud-shaped dataset (the
//! paper's motivating industrial task), ending with real-time single-record
//! scoring through the compiled plan.
//!
//! ```sh
//! cargo run --release --example fraud_detection
//! ```

use std::time::Instant;

use safe::core::{Safe, SafeConfig};
use safe::datagen::business::{generate_business, BusinessId};
use safe::gbm::booster::Gbm;
use safe::gbm::config::GbmConfig;
use safe::ops::registry::OperatorRegistry;
use safe::stats::auc::auc;

fn main() {
    // Data1 stand-in at 0.5% of the paper's 2.5M training rows.
    let split = generate_business(BusinessId::Data1, 0.005, 7);
    println!(
        "fraud dataset: {} train rows, {} features, positive rate {:.3}",
        split.train.n_rows(),
        split.train.n_cols(),
        split.train.positive_rate().unwrap()
    );

    // SAFE with the full operator set (ratios matter for fraud: amount /
    // historical average, etc.).
    let config = SafeConfig::builder()
        .operators(OperatorRegistry::arithmetic())
        .gamma(40)
        .seed(7)
        .build()
        .expect("valid config");
    let start = Instant::now();
    let outcome = Safe::new(config)
        .fit(&split.train, split.valid.as_ref())
        .expect("SAFE fits");
    println!(
        "SAFE finished in {:.2}s, selected {} features ({} generated)",
        start.elapsed().as_secs_f64(),
        outcome.plan.outputs.len(),
        outcome.plan.n_generated_outputs()
    );

    // Batch scoring comparison.
    let train_new = outcome.plan.apply(&split.train).unwrap();
    let test_new = outcome.plan.apply(&split.test).unwrap();
    let gbm_cfg = GbmConfig { n_rounds: 60, ..GbmConfig::classifier() };
    let base = Gbm::new(gbm_cfg.clone()).fit(&split.train, None).unwrap();
    let engineered = Gbm::new(gbm_cfg).fit(&train_new, None).unwrap();
    let auc_base = auc(&base.predict(&split.test), split.test.labels().unwrap());
    let auc_new = auc(&engineered.predict(&test_new), test_new.labels().unwrap());
    println!("XGB AUC: original {auc_base:.4} -> engineered {auc_new:.4}");

    // Real-time inference: compile the plan once, score single events.
    let compiled = outcome
        .plan
        .compile(&OperatorRegistry::standard())
        .expect("plan compiles");
    let probe = split.test.row(0);
    let start = Instant::now();
    let n_probe = 10_000;
    let mut checksum = 0.0;
    for _ in 0..n_probe {
        let features = compiled.apply_row(&probe).expect("row scores");
        checksum += engineered.predict_row(&features);
    }
    let per_event = start.elapsed().as_secs_f64() / n_probe as f64;
    println!(
        "real-time path: {:.1} µs per event (feature generation + model), checksum {checksum:.1}",
        per_event * 1e6
    );
}
