//! Iterative refinement: run SAFE for several iterations (Algorithm 1's
//! outer loop, Fig. 4 of the paper) and watch the feature funnel per round.
//!
//! ```sh
//! cargo run --release --example iterative_refinement
//! ```

use safe::core::{Safe, SafeConfig};
use safe::datagen::benchmarks::{generate_benchmark_scaled, BenchmarkId};
use safe::models::classifier::{evaluate_auc, ClassifierKind};

fn main() {
    let split = generate_benchmark_scaled(BenchmarkId::EegEye, 0.1, 3);
    println!(
        "dataset: {} train rows, {} features\n",
        split.train.n_rows(),
        split.train.n_cols()
    );

    let config = SafeConfig::builder()
        .n_iterations(5)
        .seed(3)
        .build()
        .expect("valid config");
    let outcome = Safe::new(config)
        .fit(&split.train, split.valid.as_ref())
        .expect("SAFE fits");

    println!("iteration funnel:");
    println!(
        "{:>4} {:>8} {:>8} {:>10} {:>9} {:>7} {:>9} {:>9}",
        "iter", "combos", "kept", "generated", "candid.", "IV-ok", "non-red", "selected"
    );
    for r in &outcome.history {
        println!(
            "{:>4} {:>8} {:>8} {:>10} {:>9} {:>7} {:>9} {:>9}",
            r.iteration,
            r.n_combinations,
            r.n_combinations_kept,
            r.n_generated,
            r.n_candidates,
            r.n_after_iv,
            r.n_after_redundancy,
            r.n_selected
        );
    }

    println!("\nXGB test AUC after each iteration (Fig. 4 style):");
    let base = evaluate_auc(ClassifierKind::Xgb, &split.train, &split.test, 0).unwrap();
    println!("  iter 0 (original): {:.4}", base);
    for (i, plan) in outcome.plans_per_iteration.iter().enumerate() {
        let train_new = plan.apply(&split.train).unwrap();
        let test_new = plan.apply(&split.test).unwrap();
        let a = evaluate_auc(ClassifierKind::Xgb, &train_new, &test_new, 0).unwrap();
        println!("  iter {}: {:.4}  ({} features)", i + 1, a, plan.outputs.len());
    }
}
