//! Head-to-head: every feature-engineering method in the workspace on one
//! dataset — ORIG, FCTree, TFC, AutoLearn, RAND, IMP, SAFE — reporting fit
//! time, feature counts, and XGB/LR test AUC.
//!
//! ```sh
//! cargo run --release --example compare_baselines
//! ```

use std::time::Instant;

use safe::baselines::{AutoLearn, FcTree, Tfc};
use safe::core::engineer::{FeatureEngineer, Identity};
use safe::core::{Safe, SafeConfig};
use safe::datagen::benchmarks::{generate_benchmark_scaled, BenchmarkId};
use safe::models::classifier::{evaluate_auc, ClassifierKind};

fn main() {
    let split = generate_benchmark_scaled(BenchmarkId::Spambase, 0.25, 9);
    println!(
        "dataset: spambase stand-in, {} train rows, {} features\n",
        split.train.n_rows(),
        split.train.n_cols()
    );

    let engineers: Vec<Box<dyn FeatureEngineer>> = vec![
        Box::new(Identity),
        Box::new(FcTree { seed: 9, ..FcTree::default() }),
        Box::new(Tfc::default()),
        Box::new(AutoLearn { seed: 9, ..AutoLearn::default() }),
        Box::new(Safe::new(SafeConfig::rand_baseline(9))),
        Box::new(Safe::new(SafeConfig::imp_baseline(9))),
        Box::new(Safe::new(
            SafeConfig::builder().seed(9).build().expect("valid config"),
        )),
    ];

    println!(
        "{:<10} {:>8} {:>9} {:>10} {:>8} {:>8}",
        "method", "fit (s)", "features", "generated", "XGB", "LR"
    );
    println!("{}", "-".repeat(60));
    for engineer in engineers {
        let start = Instant::now();
        let plan = match engineer.engineer(&split.train, split.valid.as_ref()) {
            Ok(p) => p,
            Err(e) => {
                println!("{:<10} failed: {e}", engineer.method_name());
                continue;
            }
        };
        let secs = start.elapsed().as_secs_f64();
        let train_new = plan.apply(&split.train).expect("applies");
        let test_new = plan.apply(&split.test).expect("applies");
        let xgb = evaluate_auc(ClassifierKind::Xgb, &train_new, &test_new, 9)
            .map(|a| format!("{:.2}", a * 100.0))
            .unwrap_or_else(|_| "-".into());
        let lr = evaluate_auc(ClassifierKind::Lr, &train_new, &test_new, 9)
            .map(|a| format!("{:.2}", a * 100.0))
            .unwrap_or_else(|_| "-".into());
        println!(
            "{:<10} {:>8.2} {:>9} {:>10} {:>8} {:>8}",
            engineer.method_name(),
            secs,
            plan.outputs.len(),
            plan.n_generated_outputs(),
            xgb,
            lr
        );
    }
}
