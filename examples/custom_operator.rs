//! Custom operators: the paper requires that "new operators should be
//! easily added". This example registers a domain-specific binary operator
//! — log-ratio, common in risk features — and runs SAFE with it.
//!
//! ```sh
//! cargo run --release --example custom_operator
//! ```

use std::sync::Arc;

use safe::core::{Safe, SafeConfig};
use safe::datagen::synth::{generate, SyntheticConfig};
use safe::ops::op::{FittedOperator, OpError, Operator, StatelessFitted};
use safe::ops::registry::OperatorRegistry;

/// `log_ratio(a, b) = ln((|a| + 1) / (|b| + 1))` — a scale-free comparison
/// of two magnitudes, e.g. transaction amount vs. account balance.
#[derive(Debug, Clone, Copy, Default)]
struct LogRatio;

impl Operator for LogRatio {
    fn name(&self) -> &'static str {
        "log_ratio"
    }
    fn arity(&self) -> usize {
        2
    }
    fn commutative(&self) -> bool {
        false // log_ratio(a,b) = -log_ratio(b,a)
    }
    fn fit(
        &self,
        inputs: &[&[f64]],
        _labels: Option<&[u8]>,
    ) -> Result<Box<dyn FittedOperator>, OpError> {
        self.check_arity(inputs)?;
        Ok(Box::new(StatelessFitted::new(|v| {
            ((v[0].abs() + 1.0) / (v[1].abs() + 1.0)).ln()
        })))
    }
    fn rehydrate(&self, params: &[f64]) -> Result<Box<dyn FittedOperator>, OpError> {
        if !params.is_empty() {
            return Err(OpError::BadParams("log_ratio is stateless".into()));
        }
        Ok(Box::new(StatelessFitted::new(|v| {
            ((v[0].abs() + 1.0) / (v[1].abs() + 1.0)).ln()
        })))
    }
}

fn main() {
    let ds = generate(&SyntheticConfig {
        n_rows: 3_000,
        dim: 12,
        n_signal: 5,
        n_interactions: 4,
        seed: 11,
        ..Default::default()
    });

    // Arithmetic operators plus our custom one.
    let mut operators = OperatorRegistry::arithmetic();
    operators.register(Arc::new(LogRatio));
    println!("operator set: {:?}", operators.names());

    let config = SafeConfig::builder()
        .operators(operators.clone())
        .seed(11)
        .build()
        .expect("valid config");
    let outcome = Safe::new(config).fit(&ds, None).expect("SAFE fits");

    println!("selected features:");
    for name in &outcome.plan.outputs {
        println!("  {name}");
    }
    let custom_used = outcome
        .plan
        .steps
        .iter()
        .filter(|s| s.op == "log_ratio")
        .count();
    println!("log_ratio steps in the plan: {custom_used}");

    // Plans that use custom operators must be compiled against a registry
    // that knows them.
    let compiled = outcome.plan.compile(&operators).expect("compiles");
    let features = compiled.apply_row(&ds.row(0)).expect("scores");
    println!(
        "first record engineered to {} feature values, e.g. {:?}",
        features.len(),
        &features[..features.len().min(4)]
    );
}
