//! End-to-end file workflow: read a CSV, engineer features, write the
//! transformed CSV and the plan artifact — the offline batch path of an
//! industrial deployment.
//!
//! ```sh
//! cargo run --release --example csv_workflow
//! ```

use safe::core::plan::FeaturePlan;
use safe::core::{Safe, SafeConfig};
use safe::data::csv::{read_csv, write_csv, write_csv_string};
use safe::data::split::train_test_split;
use safe::datagen::synth::{generate, SyntheticConfig};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let dir = std::env::temp_dir().join("safe_csv_workflow");
    std::fs::create_dir_all(&dir)?;

    // Simulate an exported table landing as CSV.
    let raw = generate(&SyntheticConfig {
        n_rows: 2_000,
        dim: 8,
        n_signal: 4,
        n_interactions: 3,
        missing_rate: 0.05,
        seed: 21,
        ..Default::default()
    });
    let input_path = dir.join("transactions.csv");
    write_csv(&raw, &input_path)?;
    println!("wrote input: {} ({} rows)", input_path.display(), raw.n_rows());

    // Ingest, split, engineer.
    let table = read_csv(&input_path, Some("label"))?;
    let (train, test) = train_test_split(&table, 0.3, 21)?;
    let config = SafeConfig::builder().seed(21).build()?;
    let outcome = Safe::new(config).fit(&train, None)?;
    println!(
        "plan: {} steps, {} outputs ({} generated)",
        outcome.plan.steps.len(),
        outcome.plan.outputs.len(),
        outcome.plan.n_generated_outputs()
    );

    // Persist the plan and the transformed splits.
    let plan_path = dir.join("feature_plan.safeplan");
    std::fs::write(&plan_path, outcome.plan.to_text())?;
    let train_out = dir.join("train_engineered.csv");
    let test_out = dir.join("test_engineered.csv");
    write_csv(&outcome.plan.apply(&train)?, &train_out)?;
    write_csv(&outcome.plan.apply(&test)?, &test_out)?;
    println!("wrote {}", plan_path.display());
    println!("wrote {}", train_out.display());
    println!("wrote {}", test_out.display());

    // A separate process reloads everything and verifies consistency.
    let plan_text = std::fs::read_to_string(&plan_path)?;
    let reloaded = FeaturePlan::from_text(&plan_text)?;
    let test_back = read_csv(&test_out, Some("label"))?;
    let recomputed = reloaded.apply(&test)?;
    let first_col_matches = recomputed
        .column(0)?
        .iter()
        .zip(test_back.column(0)?)
        .all(|(a, b)| (a - b).abs() < 1e-9 || (a.is_nan() && b.is_nan()));
    println!(
        "reload check: recomputed features match the CSV on disk: {first_col_matches}"
    );

    // Show the first rows of the engineered table.
    let preview = write_csv_string(&recomputed);
    for line in preview.lines().take(3) {
        let short: String = line.chars().take(110).collect();
        println!("  {short}…");
    }
    Ok(())
}
